"""Registered benchmarks, runnable by name via ``repro bench <name>``.

Each benchmark is a callable returning a JSON-serialisable report and
writing it to its ``BENCH_*.json`` file at the repo root (or ``--out``),
so perf trajectories are tracked across PRs and CI can diff a fresh run
against the committed baseline (``benchmarks/check_bench_regression.py``).

* ``engine`` — compiled-engine vs eager forward on the smoke workloads,
  including the native ``int8`` backend column (writes ``BENCH_engine.json``);
* ``serve``  — dynamic-batching serving policy sweep (writes
  ``BENCH_serve.json``).
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, Optional

#: name -> (runner, description).  A runner takes (out_path, quick, seed,
#: threads) and returns the report dict it wrote.
BENCHMARKS: Dict[str, tuple] = {}


def register_benchmark(name: str, description: str):
    def decorator(fn: Callable) -> Callable:
        BENCHMARKS[name] = (fn, description)
        return fn

    return decorator


def run_benchmark(
    name: str,
    out: Optional[str] = None,
    quick: bool = False,
    seed: int = 0,
    threads: Optional[int] = None,
) -> dict:
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; registered: {sorted(BENCHMARKS)}"
        )
    runner, _ = BENCHMARKS[name]
    return runner(out_path=out, quick=quick, seed=seed, threads=threads)


def _engine_workloads(seed: int):
    """Smoke models for the engine-vs-eager comparison (one fp32 and one
    int8 variant of the batched ResNet workload, so the int8-vs-fp32
    anomaly check compares like against like)."""
    import numpy as np

    from repro.models.common import ConvSpec
    from repro.models.lenet import lenet
    from repro.models.resnet import resnet18
    from repro.quant.qconfig import int8

    rng = np.random.default_rng(seed)
    return {
        "lenet-F2": (
            lenet(spec=ConvSpec("F2")),
            rng.standard_normal((16, 1, 28, 28)).astype(np.float32),
        ),
        "resnet18-w0.25-F4": (
            resnet18(width_multiplier=0.25, spec=ConvSpec("F4")),
            rng.standard_normal((8, 3, 32, 32)).astype(np.float32),
        ),
        "resnet18-w0.25-F4-int8": (
            resnet18(width_multiplier=0.25, spec=ConvSpec("F4", int8())),
            rng.standard_normal((8, 3, 32, 32)).astype(np.float32),
        ),
    }


@register_benchmark("engine", "compiled engine vs eager forward (BENCH_engine.json)")
def run_engine_benchmark(
    out_path: Optional[str] = None,
    quick: bool = False,
    seed: int = 0,
    threads: Optional[int] = None,
) -> dict:
    """Engine-vs-eager speedups across backends, persisted as JSON.

    Quantized workloads get ``turbo`` and native ``int8`` backend columns
    next to ``fast``; the report records whether the int8 anomaly is
    inverted (int8 on its native backend beating fp32 on ``fast``).

    Per-workload rows are measured at ``threads=1`` (and say so), so the
    speedup columns stay comparable across hosts and PRs regardless of
    core count.  The parallel executor is measured separately in the
    ``threaded_speedup`` entry: the ResNet ``fast`` and ``int8`` plans
    at ``threads=1`` vs ``threads=N`` (``threads`` argument /
    ``--threads`` / ``REPRO_THREADS``, default all cores), alongside
    ``cpu_count`` and the memory planner's allocation stats so the
    zero-allocation contract is tracked in the same artifact.

    The ``trace_overhead`` entry (ISSUE 7) pins the observability
    contract: ``run`` with tracing disabled within 1% of the pristine
    untraced executor loop, enforced by
    ``benchmarks/check_bench_regression.py`` (docs/observability.md
    'Overhead budget').
    """
    import os

    import numpy as np

    from repro.autograd import Tensor, no_grad
    from repro.engine import compile_model, measure_callable_ms, measure_plan_ms
    from repro.engine.pool import THREADS_ENV_VAR, resolve_threads

    repeats = 3 if quick else 7
    warmup = 1 if quick else 2
    # Threaded-speedup thread count: explicit argument > REPRO_THREADS >
    # all cores (the documented chain; the per-workload rows below are
    # always threads=1 regardless).
    if threads is not None:
        n_threads = resolve_threads(threads)
    elif os.environ.get(THREADS_ENV_VAR, "").strip():
        n_threads = resolve_threads(None)
    else:
        n_threads = resolve_threads(0)
    workloads = _engine_workloads(seed)
    for model, x in workloads.values():
        model.eval()
        with no_grad():  # warm quantizer observers so plans freeze ranges
            model(Tensor(x))

    summary = []
    plans = {}
    for name, (model, x) in workloads.items():
        quantized = name.endswith("int8")

        def eager():
            with no_grad():
                return model(Tensor(x))

        row = {
            "workload": name,
            "batch": int(x.shape[0]),
            "threads": 1,
            "eager_ms": round(measure_callable_ms(eager, repeats=repeats, warmup=warmup), 3),
        }
        backends = ("fast", "reference") + (("turbo", "int8") if quantized else ())
        for backend in backends:
            plan = compile_model(model, backend=backend)
            plans[(name, backend)] = (plan, x)
            ms = measure_plan_ms(plan, x, repeats=repeats, warmup=warmup, threads=1)
            row[f"engine_{backend}_ms"] = round(ms, 3)
            row[f"speedup_{backend}"] = round(row["eager_ms"] / ms, 3)
        summary.append(row)

    fp32_row = next(r for r in summary if r["workload"] == "resnet18-w0.25-F4")
    int8_row = next(r for r in summary if r["workload"] == "resnet18-w0.25-F4-int8")

    # Parallel executor: threads=1 vs threads=N on the serving-shaped
    # workloads the acceptance contract names.  With only one thread to
    # measure (1-core host and no override) the "speedup" would be two
    # identical measurements' noise, so the entry is omitted — the
    # regression guard skips absent entries.
    threaded = None
    if n_threads > 1:
        threaded = {"threads": n_threads, "workloads": {}}
        for name, backend in (
            ("resnet18-w0.25-F4", "fast"),
            ("resnet18-w0.25-F4-int8", "int8"),
        ):
            plan, x = plans[(name, backend)]
            ms_1 = measure_plan_ms(plan, x, repeats=repeats, warmup=warmup, threads=1)
            ms_n = measure_plan_ms(
                plan, x, repeats=repeats, warmup=warmup, threads=n_threads
            )
            threaded["workloads"][f"{name}@{backend}"] = {
                "ms_threads_1": round(ms_1, 3),
                "ms_threads_n": round(ms_n, 3),
                "speedup": round(ms_1 / ms_n, 3),
            }

    fast_plan, fast_x = plans[("resnet18-w0.25-F4", "fast")]

    # Tracing-off overhead gate (ISSUE 7): the public ``run`` with
    # tracing disabled must stay within 1% of the pristine untraced
    # executor loop (``_run_untraced``, the exact pre-tracing body).
    # The three legs are timed interleaved, min-of-N per leg: scheduler
    # interference only ever slows a leg, so interleaved minima compare
    # the same quiet-host conditions instead of whichever leg ran during
    # a noisy stretch.  The traced leg is informational (not gated).
    import time as _time

    from repro.obs import trace as obs_trace

    overhead_rounds = 15 if quick else 40
    saved_tracer = obs_trace.active_tracer()
    obs_trace.disable()  # the "disabled" leg must see no ambient tracer
    try:
        buf = obs_trace.TraceBuffer()
        for _ in range(max(1, warmup)):
            fast_plan._run_untraced(fast_x, 1)
            fast_plan.run(fast_x, threads=1)
            fast_plan.run(fast_x, threads=1, trace=buf)
        best = {"pristine": float("inf"), "disabled": float("inf"),
                "enabled": float("inf")}
        for _ in range(overhead_rounds):
            t0 = _time.perf_counter()
            fast_plan._run_untraced(fast_x, 1)
            best["pristine"] = min(best["pristine"], _time.perf_counter() - t0)
            t0 = _time.perf_counter()
            fast_plan.run(fast_x, threads=1)
            best["disabled"] = min(best["disabled"], _time.perf_counter() - t0)
            buf.clear()
            t0 = _time.perf_counter()
            fast_plan.run(fast_x, threads=1, trace=buf)
            best["enabled"] = min(best["enabled"], _time.perf_counter() - t0)
    finally:
        if saved_tracer is not None:
            obs_trace.enable(saved_tracer)
    trace_overhead = {
        "workload": "resnet18-w0.25-F4@fast",
        "repeats": overhead_rounds,
        "ms_pristine": round(best["pristine"] * 1e3, 4),
        "ms_disabled": round(best["disabled"] * 1e3, 4),
        "ms_enabled": round(best["enabled"] * 1e3, 4),
        "overhead_disabled_pct": round(
            100.0 * (best["disabled"] / best["pristine"] - 1.0), 3
        ),
        "overhead_enabled_pct": round(
            100.0 * (best["enabled"] / best["pristine"] - 1.0), 3
        ),
    }

    # Transform-domain residency gate (ISSUE 10): a chained stride-1
    # Winograd stem compiled with the residency pass on vs off.  Same
    # interleaved min-of-N discipline as the trace-overhead gate — the
    # two legs share every quiet-host stretch, so the ratio is the pass,
    # not the scheduler.  The resident plan must also keep the steady-
    # state zero-allocation contract (the tap tensor lives in a planned
    # arena slot, not a per-run allocation).
    from repro.nn.layers import ReLU
    from repro.nn.module import Sequential
    from repro.winograd.layer import WinogradConv2d

    chain_rng = np.random.default_rng(seed + 1)
    chain_parts = []
    for i in range(6):
        chain_parts.append(WinogradConv2d(16, 16, kernel_size=3, m=4, padding=1,
                                          rng=chain_rng))
        chain_parts.append(ReLU())
    chain_model = Sequential(*chain_parts)
    chain_model.eval()
    chain_x = chain_rng.standard_normal((4, 16, 32, 32)).astype(np.float32)
    resident_plan = compile_model(chain_model, backend="fast", residency=True)
    roundtrip_plan = compile_model(chain_model, backend="fast", residency=False)
    residency_rounds = 10 if quick else 30
    for _ in range(max(1, warmup)):
        resident_plan.run(chain_x, threads=1)
        roundtrip_plan.run(chain_x, threads=1)
    best_res = {"resident": float("inf"), "roundtrip": float("inf")}
    for _ in range(residency_rounds):
        t0 = _time.perf_counter()
        resident_plan.run(chain_x, threads=1)
        best_res["resident"] = min(best_res["resident"], _time.perf_counter() - t0)
        t0 = _time.perf_counter()
        roundtrip_plan.run(chain_x, threads=1)
        best_res["roundtrip"] = min(best_res["roundtrip"], _time.perf_counter() - t0)
    res_memory = resident_plan.memory_report(batch=int(chain_x.shape[0]))
    winograd_residency = {
        "workload": "winograd-chain6-F4@fast",
        "batch": int(chain_x.shape[0]),
        "repeats": residency_rounds,
        "residency_edges": len(resident_plan.residency_report()),
        "ms_resident": round(best_res["resident"] * 1e3, 4),
        "ms_roundtrip": round(best_res["roundtrip"] * 1e3, 4),
        "speedup": round(best_res["roundtrip"] / best_res["resident"], 4),
        "steady_state_allocations": res_memory["steady_state_allocations"],
    }

    memory = fast_plan.memory_report(batch=int(fp32_row["batch"]))
    report = {
        "benchmark": "bench_engine_vs_eager",
        "threads": 1,  # thread count of the per-workload rows
        "cpu_count": os.cpu_count() or 1,
        "results": summary,
        "int8_anomaly": {
            "fp32_fast_ms": fp32_row["engine_fast_ms"],
            "int8_fast_ms": int8_row["engine_fast_ms"],
            "int8_native_ms": int8_row["engine_int8_ms"],
            "inverted": int8_row["engine_int8_ms"] < fp32_row["engine_fast_ms"],
        },
        "threaded_speedup": threaded,
        "trace_overhead": trace_overhead,
        "winograd_residency": winograd_residency,
        "memory": {
            "workload": "resnet18-w0.25-F4@fast",
            "steady_state_allocations": memory["steady_state_allocations"],
            "allocations_eliminated": memory["allocations_eliminated"],
            "arena_bytes": memory["arena_bytes"],
            "planned_shapes": memory["planned_shapes"],
        },
    }
    path = pathlib.Path(out_path) if out_path else _repo_root() / "BENCH_engine.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


@register_benchmark("serve", "dynamic-batching serving policy sweep (BENCH_serve.json)")
def run_serve_benchmark(
    out_path: Optional[str] = None,
    quick: bool = False,
    seed: int = 0,
    threads: Optional[int] = None,
) -> dict:
    """``seed``/``threads`` are accepted for runner-signature uniformity
    but unused: the sweep's model/load seeds are fixed by the served
    ModelSpec, and its servers run at the REPRO_THREADS default."""
    from repro.serve import benchmark_serving

    return benchmark_serving(
        out_path=out_path or str(_repo_root() / "BENCH_serve.json"),
        quick=quick,
    )


def _repo_root() -> pathlib.Path:
    """Repo root when run from a checkout; cwd otherwise."""
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pytest.ini").exists() or (parent / ".git").exists():
            return parent
    return pathlib.Path.cwd()
