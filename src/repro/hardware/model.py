"""The analytical per-layer latency model.

Cost structure (all times in milliseconds, square spatial dims):

``im2row`` / ``im2col``
    lowering (memory-bound patch expansion) + one GEMM of
    (W² × 9C) · (9C × K).  im2col pays a constant factor more for the
    lowering because of its transposed, cache-unfriendly write pattern.

``Winograd F(m)``  (t = m + r - 1, tiles P = ceil(W/m)²)
    input transform   — 2·nnz(Bᵀ)·t MACs per tile·channel, at the
                        transform-stage rate (scatter/gather bound);
    Hadamard stage    — t² GEMMs of (K × C)·(C × P) at the GEMM rate;
    output transform  — 2·nnz(Aᵀ)·t MACs per tile·filter.
    The filter transform ``G g Gᵀ`` is amortised across inferences and
    excluded, as the paper assumes (§3.1).

GEMM efficiency degrades on small dimensions via
``eff = 1 / (1 + αm/M + αk/K + αn/N)``, which reproduces the paper's two
qualitative findings: input layers (C = 3) cannot feed the Hadamard GEMMs,
and small outputs leave the ragged ``ceil``-tile waste dominant (the F4/F6
alternation of Figure 7).

Transform cost scales with the *density* of the transform matrices:
learned ("flex") transforms are dense and therefore slower — exactly the
§A.2 overhead study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.winograd.transforms import WinogradTransform, get_transform

#: Winograd algorithm names understood by the model.
WINOGRAD_M = {"F2": 2, "F4": 4, "F6": 6}

#: Supported datatypes.
DTYPES = ("fp32", "int16", "int8")


@dataclass(frozen=True)
class ConvShape:
    """A 3×3 (or r×r) convolution layer's shape: C→K at W×W output."""

    in_channels: int
    out_channels: int
    out_width: int
    kernel_size: int = 3
    groups: int = 1

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.out_width) <= 0:
            raise ValueError(f"invalid shape {self}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(f"groups={self.groups} must divide channels in {self}")


@dataclass
class ModelParams:
    """Fitted per-core parameters (FP32 base + precision factors)."""

    r_mac: float  # GEMM MACs per ms at peak
    r_tr: float  # transform-stage MACs per ms
    c_lower: float  # ms per lowered element (im2row)
    o_fix: float  # fixed per-call overhead, ms
    alpha_m: float  # GEMM efficiency knees
    alpha_k: float
    alpha_n: float
    im2col_factor: float = 1.35  # lowering penalty of im2col vs im2row
    int8_gemm_speedup: float = 2.0
    int8_tr_speedup: float = 1.5
    int8_lower_speedup: float = 2.0

    def gemm_rate(self, dtype: str) -> float:
        return self.r_mac * self._dtype_factor(dtype, self.int8_gemm_speedup)

    def tr_rate(self, dtype: str) -> float:
        return self.r_tr * self._dtype_factor(dtype, self.int8_tr_speedup)

    def lower_cost(self, dtype: str) -> float:
        return self.c_lower / self._dtype_factor(dtype, self.int8_lower_speedup)

    @staticmethod
    def _dtype_factor(dtype: str, int8_speedup: float) -> float:
        if dtype == "fp32":
            return 1.0
        if dtype == "int8":
            return int8_speedup
        if dtype == "int16":
            # INT16 is unsupported by Arm Compute Library (paper §5.3);
            # model it between FP32 and INT8 (geometric mean).
            return math.sqrt(int8_speedup)
        raise ValueError(f"unknown dtype {dtype!r}; expected one of {DTYPES}")


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-stage latency of one layer (the Figure 8 bar decomposition)."""

    algorithm: str
    lowering_ms: float = 0.0
    input_transform_ms: float = 0.0
    gemm_ms: float = 0.0
    output_transform_ms: float = 0.0
    overhead_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.lowering_ms
            + self.input_transform_ms
            + self.gemm_ms
            + self.output_transform_ms
            + self.overhead_ms
        )

    @property
    def transform_fraction(self) -> float:
        """Share of time in to/from-Winograd transforms (paper: up to 75%)."""
        total = self.total_ms
        return (self.input_transform_ms + self.output_transform_ms) / total if total else 0.0


def gemm_eff(params: ModelParams, m: float, k: float, n: float) -> float:
    """GEMM efficiency in (0, 1]: degrades when any dimension is small."""
    return 1.0 / (1.0 + params.alpha_m / m + params.alpha_k / k + params.alpha_n / n)


def gemm_time_ms(params: ModelParams, m: float, k: float, n: float, dtype: str = "fp32") -> float:
    """Time of one (m × k)·(k × n) GEMM."""
    return (m * k * n) / (params.gemm_rate(dtype) * gemm_eff(params, m, k, n))


def _transform_nnz(transform: WinogradTransform, dense: bool) -> Dict[str, float]:
    t = transform.t
    m = transform.m
    if dense:
        return {"BT": float(t * t), "AT": float(m * t)}
    return {
        "BT": float(np.count_nonzero(transform.BT)),
        "AT": float(np.count_nonzero(transform.AT)),
    }


def conv_latency(
    params: ModelParams,
    shape: ConvShape,
    algorithm: str,
    dtype: str = "fp32",
    dense_transforms: bool = False,
    transform: Optional[WinogradTransform] = None,
) -> LatencyBreakdown:
    """Latency breakdown for one convolution layer under one algorithm.

    ``dense_transforms=True`` models learned (flex) transforms, which lose
    the zero-structure of the Cook–Toom defaults (§A.2).  ``transform``
    overrides the canonical transform (e.g. to price an actual learned
    matrix by its real density).
    """
    c = shape.in_channels // shape.groups
    k = shape.out_channels // shape.groups
    g = shape.groups
    w = shape.out_width
    r = shape.kernel_size

    if algorithm in ("im2row", "im2col"):
        elements = c * g * r * r * w * w
        lowering = params.lower_cost(dtype) * elements
        gemm = g * gemm_time_ms(params, w * w, r * r * c, k, dtype)
        # im2col's column-major patch layout costs extra locality in both
        # the lowering writes and the GEMM reads (Table 3: ~1.1–1.3×).
        penalty = params.im2col_factor if algorithm == "im2col" else 1.0
        return LatencyBreakdown(
            algorithm=algorithm,
            lowering_ms=lowering * penalty,
            gemm_ms=gemm * penalty,
            overhead_ms=params.o_fix,
        )

    if algorithm not in WINOGRAD_M:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    m = WINOGRAD_M[algorithm]
    if transform is None:
        transform = get_transform(m, r)
    t = transform.t
    tiles = math.ceil(w / m) ** 2
    nnz = _transform_nnz(transform, dense_transforms)

    in_tr = 2.0 * nnz["BT"] * t * c * g * tiles / params.tr_rate(dtype)
    hadamard = g * t * t * gemm_time_ms(params, k, c, tiles, dtype)
    out_tr = 2.0 * nnz["AT"] * t * k * g * tiles / params.tr_rate(dtype)
    return LatencyBreakdown(
        algorithm=algorithm,
        input_transform_ms=in_tr,
        gemm_ms=hadamard,
        output_transform_ms=out_tr,
        overhead_ms=params.o_fix,
    )
