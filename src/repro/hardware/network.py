"""Network-level latency: walk a model, price every convolution.

The paper evaluates whole ResNet-18 variants on the board (Table 3).  Here
a model is run once on an example input (shape capture), then every conv
module is priced by the analytical model.  Non-convolution layers (BN,
pooling, ReLU, the classifier) are not priced — the paper's measurements
and search likewise only concern the convolution algorithm choice, and the
paper notes the non-conv remainder is small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.autograd.function import no_grad
from repro.autograd.tensor import Tensor
from repro.hardware.model import ConvShape, LatencyBreakdown, conv_latency
from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.nn.qlayers import QuantConv2d
from repro.winograd.layer import WinogradConv2d


def dtype_from_bits(bits: Optional[int]) -> str:
    """Map a QConfig bit-width to a latency-model datatype.

    The board supports FP32 and INT8 kernels; INT16 is priced between the
    two (§5.3: "INT16 measurements are not currently supported in Arm
    Compute Library").  Odd widths like the paper's INT10 accuracy study
    are priced as INT16 (nearest supported container).
    """
    if bits is None:
        return "fp32"
    if bits <= 9:
        return "int8"
    return "int16"


@dataclass
class PricedConv:
    name: str
    shape: ConvShape
    algorithm: str
    dtype: str
    dense_transforms: bool
    breakdown: Optional[LatencyBreakdown] = None


@dataclass
class NetworkLatency:
    core: str
    layers: List[PricedConv]

    @property
    def total_ms(self) -> float:
        return sum(l.breakdown.total_ms for l in self.layers if l.breakdown)

    def describe(self) -> List[str]:
        rows = []
        for l in self.layers:
            rows.append(
                f"{l.name:<28s} {l.algorithm:<7s} {l.dtype:<5s} "
                f"{l.shape.in_channels}->{l.shape.out_channels}@{l.shape.out_width}"
                f"  {l.breakdown.total_ms:8.3f} ms"
            )
        return rows


def _classify(module: Module) -> Optional[Tuple[str, str, bool]]:
    """(algorithm, dtype, dense_transforms) for a conv-like module, else None."""
    if isinstance(module, WinogradConv2d):
        algorithm = f"F{module.m}"
        dtype = dtype_from_bits(module.qconfig.bits)
        # Flex transforms are dense after training; price them as dense
        # whenever they have actually drifted from Cook–Toom (or will:
        # flex implies dense deployment — §A.2).
        return algorithm, dtype, module.flex
    if isinstance(module, QuantConv2d):
        return module.conv.method, dtype_from_bits(module.qconfig.bits), False
    if isinstance(module, Conv2d):
        return module.method, "fp32", False
    return None


def conv_modules_with_shapes(
    model: Module, example_input: np.ndarray
) -> List[PricedConv]:
    """Run a shape-capturing forward pass and list every priced conv."""
    model.eval()
    with no_grad():
        model(Tensor(example_input))
    model.train()
    priced: List[PricedConv] = []
    seen_convs = set()
    for name, module in model.named_modules():
        info = _classify(module)
        if info is None:
            continue
        # A QuantConv2d wraps a Conv2d child; skip the child.
        if isinstance(module, QuantConv2d):
            seen_convs.add(id(module.conv))
        if isinstance(module, Conv2d) and id(module) in seen_convs:
            continue
        algorithm, dtype, dense = info
        inner = module.conv if isinstance(module, QuantConv2d) else module
        if not hasattr(inner, "last_input_hw"):
            continue  # module not touched by this input
        h, _ = inner.last_input_hw
        kernel = inner.kernel_size[0] if isinstance(inner.kernel_size, tuple) else inner.kernel_size
        if isinstance(inner, WinogradConv2d):
            kernel = inner.kernel_size
            pad = inner.padding
            stride = 1
        else:
            pad = inner.padding if isinstance(inner.padding, int) else inner.padding[0]
            stride = inner.stride if isinstance(inner.stride, int) else inner.stride[0]
        out_w = (h + 2 * pad - kernel) // stride + 1
        shape = ConvShape(
            in_channels=inner.in_channels,
            out_channels=inner.out_channels,
            out_width=out_w,
            kernel_size=kernel,
            groups=inner.groups,
        )
        priced.append(PricedConv(name, shape, algorithm, dtype, dense))
    return priced


def model_latency(
    model: Module,
    example_input: np.ndarray,
    core: str = "A73",
    calibrated=None,
) -> NetworkLatency:
    """Total conv latency of ``model`` on ``core`` for the given input."""
    from repro.hardware.calibration import get_calibrated_model

    calibrated = calibrated or get_calibrated_model()
    priced = conv_modules_with_shapes(model, example_input)
    for layer in priced:
        layer.breakdown = calibrated.conv_latency(
            layer.shape,
            layer.algorithm,
            dtype=layer.dtype,
            dense_transforms=layer.dense_transforms,
            core=core,
            network_context=True,
        )
    return NetworkLatency(core=core, layers=priced)


# ---------------------------------------------------------------------------
# Static ResNet-18 shape enumeration — used for calibrating against Table 3
# without building a full model.
# ---------------------------------------------------------------------------


def resnet18_layer_shapes(image_size: int = 32) -> List[Tuple[str, ConvShape]]:
    """(role, shape) for every conv of the paper's CIFAR ResNet-18.

    Roles: "stem", "block" (searchable 3×3, indexed in network order by
    position in this list), "shortcut" (1×1).
    """
    layers: List[Tuple[str, ConvShape]] = []
    layers.append(("stem", ConvShape(3, 32, image_size)))
    widths = [64, 128, 256, 512]
    in_ch = 32
    size = image_size
    for stage, out_ch in enumerate(widths):
        if stage > 0:
            size //= 2
        for block in range(2):
            downsample = stage > 0 and block == 0
            layers.append(("block", ConvShape(in_ch, out_ch, size)))
            layers.append(("block", ConvShape(out_ch, out_ch, size)))
            if downsample or in_ch != out_ch:
                layers.append(("shortcut", ConvShape(in_ch, out_ch, size, kernel_size=1)))
            in_ch = out_ch
    return layers
