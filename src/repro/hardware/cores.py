"""Core specifications (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CoreSpec:
    """Published hardware characteristics of one CPU core.

    ``peak_fp32_macs_per_cycle`` comes from the micro-architecture (NEON
    width × pipes), not Table 2; it seeds the calibration but the fitted
    effective rate is what the model uses.
    """

    name: str
    clock_ghz: float
    l1_kb: int
    l2_kb: int
    peak_fp32_macs_per_cycle: float

    @property
    def peak_fp32_macs_per_ms(self) -> float:
        return self.clock_ghz * 1e6 * self.peak_fp32_macs_per_cycle

    @property
    def l1_bytes(self) -> int:
        return self.l1_kb * 1024

    @property
    def l2_bytes(self) -> int:
        return self.l2_kb * 1024


#: HiKey 960 big.LITTLE cores (Table 2).  The A73 is the high-performance
#: out-of-order core (2×128-bit NEON FMA pipes); the A53 the in-order
#: efficiency core (1×64-bit NEON pipe).
CORES: Dict[str, CoreSpec] = {
    "A73": CoreSpec(name="A73", clock_ghz=2.4, l1_kb=64, l2_kb=2048, peak_fp32_macs_per_cycle=8.0),
    "A53": CoreSpec(name="A53", clock_ghz=1.8, l1_kb=32, l2_kb=512, peak_fp32_macs_per_cycle=2.0),
}


def get_core(name: str) -> CoreSpec:
    try:
        return CORES[name.upper()]
    except KeyError:
        raise KeyError(f"unknown core {name!r}; available: {sorted(CORES)}") from None
