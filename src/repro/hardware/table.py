"""Latency lookup tables — the database backing wiNAS.

The paper measured every (layer shape × algorithm × precision) combination
once on the board and looked latencies up during the search.  This module
provides the same artefact, generated from the calibrated model and
memoised, so the search's ``E{latency}`` term is a cheap dictionary read.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.hardware.calibration import CalibratedModel, get_calibrated_model
from repro.hardware.model import ConvShape

Key = Tuple[int, int, int, int, int, str, str]  # (cin, cout, w, r, groups, algo, dtype)


class LatencyTable:
    """Memoised per-layer latency lookups for one core."""

    def __init__(
        self,
        core: str = "A73",
        calibrated: Optional[CalibratedModel] = None,
        network_context: bool = True,
    ):
        self.core = core.upper()
        self.calibrated = calibrated or get_calibrated_model()
        self.network_context = network_context
        self._cache: Dict[Tuple[Key, bool], float] = {}

    def latency_ms(
        self,
        shape: ConvShape,
        algorithm: str,
        dtype: str = "fp32",
        dense_transforms: bool = False,
    ) -> float:
        key = (
            (
                shape.in_channels,
                shape.out_channels,
                shape.out_width,
                shape.kernel_size,
                shape.groups,
                algorithm,
                dtype,
            ),
            dense_transforms,
        )
        if key not in self._cache:
            self._cache[key] = self.calibrated.conv_latency(
                shape,
                algorithm,
                dtype=dtype,
                dense_transforms=dense_transforms,
                core=self.core,
                network_context=self.network_context,
            ).total_ms
        return self._cache[key]

    def candidates(
        self,
        shape: ConvShape,
        algorithms: Tuple[str, ...] = ("im2row", "F2", "F4", "F6"),
        dtype: str = "fp32",
        dense_transforms: bool = True,
    ) -> Dict[str, float]:
        """Latency of each candidate algorithm for one layer shape.

        ``dense_transforms`` defaults to True here because wiNAS candidates
        are Winograd-*aware* layers whose transforms may be learned; the
        search should price the worst case (§A.2, the † in Table 3).
        """
        return {
            algo: self.latency_ms(
                shape, algo, dtype, dense_transforms and algo.startswith("F")
            )
            for algo in algorithms
        }
