"""Analytical latency model of Arm Cortex-A73 / A53 mobile CPUs.

The paper measures real hardware (HiKey 960).  That board is not available
here, so this package substitutes an analytical cost model with the same
*interface* the paper's pipeline needs — per-layer, per-algorithm latency
lookups — calibrated against the paper's own published measurements:

* the Figure 7 grid (A73, FP32, 240 data points) fits the base model;
* Table 3's network-level latencies fit the INT8 throughput factors and the
  A53 scaling factors.

The model accounts for the mechanisms the paper discusses: GEMM efficiency
loss on small dimensions (why input layers don't benefit from Winograd),
ragged-tile waste from ``ceil(W/m)`` (why F4/F6 alternate with output
width), transform cost proportional to transform-matrix density (why
learned dense transforms cost more — §A.2), and lowering cost for
im2row/im2col.
"""

from repro.hardware.cores import CoreSpec, CORES, get_core
from repro.hardware.model import (
    ConvShape,
    LatencyBreakdown,
    conv_latency,
    gemm_time_ms,
)
from repro.hardware.calibration import CalibratedModel, get_calibrated_model
from repro.hardware.network import model_latency, conv_modules_with_shapes, NetworkLatency
from repro.hardware.table import LatencyTable

__all__ = [
    "CoreSpec",
    "CORES",
    "get_core",
    "ConvShape",
    "LatencyBreakdown",
    "conv_latency",
    "gemm_time_ms",
    "CalibratedModel",
    "get_calibrated_model",
    "model_latency",
    "conv_modules_with_shapes",
    "NetworkLatency",
    "LatencyTable",
]
