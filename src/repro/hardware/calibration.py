"""Fitting the latency model to the paper's published measurements.

Two-step calibration:

1. **A73 / FP32 base** — seven parameters (GEMM rate, transform rate,
   lowering cost, fixed overhead, three GEMM-efficiency knees) are fitted
   to the 240-point Figure 7 grid in log space.
2. **Extensions** — the INT8 speedup factors, the im2col lowering factor,
   and a network-context factor are fitted to Table 3's A73 network
   latencies; the A53's own parameters are fitted to Table 3's A53 column
   (sharing the A73's efficiency knees, which are micro-architectural
   shape constants).

The *network-context factor* absorbs the constant offset between isolated
layer benchmarks (cold caches, 5-second separations — §5.3) and layers
executed back-to-back inside a network; it rescales totals uniformly and
therefore never changes which algorithm wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.hardware.model import (
    ConvShape,
    LatencyBreakdown,
    ModelParams,
    conv_latency,
)
from repro.hardware.network import resnet18_layer_shapes
from repro.paperdata.figure7 import figure7_grid
from repro.paperdata.tables import TABLE3_ROWS


def _unpack_base(x: np.ndarray) -> ModelParams:
    r_mac, r_tr, c_lower, o_fix, a_m, a_k, a_n = np.exp(x)
    return ModelParams(
        r_mac=r_mac,
        r_tr=r_tr,
        c_lower=c_lower,
        o_fix=o_fix,
        alpha_m=a_m,
        alpha_k=a_k,
        alpha_n=a_n,
    )


@lru_cache(maxsize=1)
def _fit_a73_base() -> ModelParams:
    grid = figure7_grid()
    entries = [
        (ConvShape(cin, cout, out_w), algo, ms)
        for (out_w, cin, cout, algo), ms in grid.items()
    ]

    def residuals(x: np.ndarray) -> np.ndarray:
        params = _unpack_base(x)
        res = np.empty(len(entries))
        for i, (shape, algo, observed) in enumerate(entries):
            pred = conv_latency(params, shape, algo).total_ms
            res[i] = math.log(pred) - math.log(observed)
        return res

    # Physically motivated starting point: ~2.7 GMAC/s effective GEMM rate,
    # transforms an order of magnitude slower, microsecond-scale overheads.
    x0 = np.log([2.7e6, 4.0e5, 3.0e-6, 5.0e-3, 50.0, 50.0, 20.0])
    fit = optimize.least_squares(residuals, x0, method="lm", max_nfev=4000)
    return _unpack_base(fit.x)


# ---------------------------------------------------------------------------
# Table 3 network predictions
# ---------------------------------------------------------------------------

#: Plans for Table 3 rows: how each conv role is implemented.
#: (block 3×3 algorithm, tail-two-blocks algorithm, dense transforms?)
_PLAN = {
    "im2row": ("im2row", "im2row", False),
    "im2col": ("im2col", "im2col", False),
    "WF2": ("F2", "F2", False),
    "WF4": ("F4", "F2", False),
    "WAF2": ("F2", "F2", False),  # default (sparse) transforms — the paper's (*)
    "WAF4": ("F4", "F2", True),  # learned transforms: dense (†)
}


def predict_resnet18_latency(
    params: ModelParams,
    plan: str,
    dtype: str,
    image_size: int = 32,
) -> float:
    """Model-predicted conv latency (ms) of the paper's ResNet-18."""
    main_algo, tail_algo, dense = _PLAN[plan]
    shapes = resnet18_layer_shapes(image_size)
    block_indices = [i for i, (role, _) in enumerate(shapes) if role == "block"]
    tail = set(block_indices[-4:])  # the last two residual blocks
    total = 0.0
    for i, (role, shape) in enumerate(shapes):
        if role == "block":
            algo = tail_algo if i in tail else main_algo
        else:
            # stem and 1×1 shortcuts always use the standard algorithm
            algo = "im2row" if main_algo not in ("im2row", "im2col") else main_algo
        is_winograd = algo.startswith("F")
        total += conv_latency(
            params, shape, algo, dtype=dtype, dense_transforms=dense and is_winograd
        ).total_ms
    return total


def _a73_observations() -> List[Tuple[str, str, float]]:
    obs = []
    for row in TABLE3_ROWS:
        if row["conv"] not in _PLAN or not isinstance(row["a73"], (int, float)):
            continue
        dtype = "fp32" if row["bits"] == 32 else "int8"
        if (row["conv"], dtype) == ("WAF2", "fp32"):
            continue  # identical prediction to WF2 fp32 (duplicate)
        obs.append((row["conv"], dtype, float(row["a73"])))
    return obs


def _a53_observations() -> List[Tuple[str, str, float]]:
    obs = []
    for row in TABLE3_ROWS:
        if row["conv"] not in _PLAN or not isinstance(row["a53"], (int, float)):
            continue
        dtype = "fp32" if row["bits"] == 32 else "int8"
        if (row["conv"], dtype) == ("WAF2", "fp32"):
            continue
        obs.append((row["conv"], dtype, float(row["a53"])))
    return obs


@lru_cache(maxsize=1)
def _fit_extensions() -> Tuple[ModelParams, float, ModelParams]:
    """Returns (a73_params_with_factors, a73_network_factor, a53_params)."""
    base = _fit_a73_base()

    a73_obs = _a73_observations()

    def a73_residuals(x: np.ndarray) -> np.ndarray:
        net_factor, im2col_f, i8_gemm, i8_tr, i8_low = np.exp(x)
        params = ModelParams(
            r_mac=base.r_mac,
            r_tr=base.r_tr,
            c_lower=base.c_lower,
            o_fix=base.o_fix,
            alpha_m=base.alpha_m,
            alpha_k=base.alpha_k,
            alpha_n=base.alpha_n,
            im2col_factor=im2col_f,
            int8_gemm_speedup=i8_gemm,
            int8_tr_speedup=i8_tr,
            int8_lower_speedup=i8_low,
        )
        res = []
        for plan, dtype, observed in a73_obs:
            pred = net_factor * predict_resnet18_latency(params, plan, dtype)
            res.append(math.log(pred) - math.log(observed))
        return np.array(res)

    # Bounds keep every factor physically meaningful: the network factor is
    # a cache-warmth effect (well under 1); im2col costs at most ~2× im2row;
    # INT8 helps by 1–4× (NEON dot-product kernels) and never slows a stage
    # below 0.5× (widening overheads in transform kernels).
    x0 = np.log([0.5, 1.3, 2.0, 1.5, 2.0])
    lo = np.log([0.05, 1.0, 1.0, 0.5, 0.5])
    hi = np.log([1.5, 2.0, 4.0, 4.0, 4.0])
    fit = optimize.least_squares(a73_residuals, x0, bounds=(lo, hi), max_nfev=2000)
    net_factor, im2col_f, i8_gemm, i8_tr, i8_low = np.exp(fit.x)
    a73 = ModelParams(
        r_mac=base.r_mac,
        r_tr=base.r_tr,
        c_lower=base.c_lower,
        o_fix=base.o_fix,
        alpha_m=base.alpha_m,
        alpha_k=base.alpha_k,
        alpha_n=base.alpha_n,
        im2col_factor=float(im2col_f),
        int8_gemm_speedup=float(i8_gemm),
        int8_tr_speedup=float(i8_tr),
        int8_lower_speedup=float(i8_low),
    )

    a53_obs = _a53_observations()

    def a53_residuals(x: np.ndarray) -> np.ndarray:
        r_mac, r_tr, c_lower, im2col_f, i8_gemm, i8_tr, i8_low = np.exp(x)
        params = ModelParams(
            r_mac=r_mac,
            r_tr=r_tr,
            c_lower=c_lower,
            o_fix=base.o_fix,
            alpha_m=base.alpha_m,
            alpha_k=base.alpha_k,
            alpha_n=base.alpha_n,
            im2col_factor=im2col_f,
            int8_gemm_speedup=i8_gemm,
            int8_tr_speedup=i8_tr,
            int8_lower_speedup=i8_low,
        )
        res = []
        for plan, dtype, observed in a53_obs:
            # Fitted rates are network-scale here; they are rescaled to
            # isolated-benchmark scale after the fit (see below).
            pred = predict_resnet18_latency(params, plan, dtype)
            res.append(math.log(pred) - math.log(observed))
        return np.array(res)

    # Start from A73 values scaled by clock × issue-width, expressed at
    # network scale (the A53 observations are network latencies, so its
    # rates absorb the cache-warmth factor the A73 keeps separate).  The
    # A53 is strictly the weaker core: bound its effective rates below the
    # A73's network-scale rates.
    scale = (1.8 / 2.4) * 0.5
    a73_net_mac = base.r_mac / net_factor
    a73_net_tr = base.r_tr / net_factor
    x0 = np.log([a73_net_mac * scale, a73_net_tr * scale, base.c_lower, 1.3, 1.2, 1.5, 1.5])
    lo = np.log([a73_net_mac * 0.05, a73_net_tr * 0.02, base.c_lower * 0.1, 1.0, 0.8, 0.5, 0.5])
    hi = np.log([a73_net_mac * 1.0, a73_net_tr * 1.0, base.c_lower * 100, 2.0, 4.0, 4.0, 4.0])
    fit53 = optimize.least_squares(a53_residuals, x0, bounds=(lo, hi), max_nfev=2000)
    r_mac, r_tr, c_lower, im2col_f53, i8_gemm53, i8_tr53, i8_low53 = np.exp(fit53.x)
    # The A53 was fitted on network-scale observations.  Re-express its
    # rates at isolated-benchmark scale (dividing out the cache-warmth
    # factor, assumed shared across cores) so that per-layer predictions
    # are directly comparable between the two cores; the factor is then
    # re-applied for network-context predictions, leaving the fitted
    # network latencies unchanged.
    r_mac *= net_factor
    r_tr *= net_factor
    c_lower /= net_factor
    a53 = ModelParams(
        r_mac=float(r_mac),
        r_tr=float(r_tr),
        c_lower=float(c_lower),
        o_fix=base.o_fix,
        alpha_m=base.alpha_m,
        alpha_k=base.alpha_k,
        alpha_n=base.alpha_n,
        im2col_factor=float(im2col_f53),
        int8_gemm_speedup=float(i8_gemm53),
        int8_tr_speedup=float(i8_tr53),
        int8_lower_speedup=float(i8_low53),
    )
    return a73, float(net_factor), a53


@dataclass
class CalibratedModel:
    """Fitted latency model for both cores, with convenience API."""

    a73: ModelParams
    a53: ModelParams
    network_factor: Dict[str, float]

    def params(self, core: str) -> ModelParams:
        core = core.upper()
        if core == "A73":
            return self.a73
        if core == "A53":
            return self.a53
        raise KeyError(f"unknown core {core!r}")

    def conv_latency(
        self,
        shape: ConvShape,
        algorithm: str,
        dtype: str = "fp32",
        dense_transforms: bool = False,
        core: str = "A73",
        network_context: bool = False,
        transform=None,
    ) -> LatencyBreakdown:
        params = self.params(core)
        breakdown = conv_latency(
            params, shape, algorithm, dtype=dtype, dense_transforms=dense_transforms,
            transform=transform,
        )
        if network_context:
            f = self.network_factor[core.upper()]
            breakdown = LatencyBreakdown(
                algorithm=breakdown.algorithm,
                lowering_ms=breakdown.lowering_ms * f,
                input_transform_ms=breakdown.input_transform_ms * f,
                gemm_ms=breakdown.gemm_ms * f,
                output_transform_ms=breakdown.output_transform_ms * f,
                overhead_ms=breakdown.overhead_ms * f,
            )
        return breakdown

    def resnet18_latency(self, plan: str, dtype: str, core: str = "A73") -> float:
        """Network-scale Table-3-style prediction (ms)."""
        raw = predict_resnet18_latency(self.params(core), plan, dtype)
        return raw * self.network_factor[core.upper()]


@lru_cache(maxsize=1)
def get_calibrated_model() -> CalibratedModel:
    """The calibrated model (fitted once per process, ~a second)."""
    a73, net_factor, a53 = _fit_extensions()
    return CalibratedModel(
        a73=a73,
        a53=a53,
        network_factor={"A73": net_factor, "A53": net_factor},
    )
