"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1 --scale smoke --seed 0
    python -m repro.cli run figure7
    python -m repro.cli run figure4 --scale quick --out figure4.txt
    python -m repro.cli infer --model resnet18 --algorithm F4 --compare
    python -m repro.cli infer --quant int8 --backend int8 --compare
    python -m repro.cli bench engine
    python -m repro.cli compile resnet18-w0.25-F4-int8@int8 -o resnet.rpln
    python -m repro.cli serve --model resnet.rpln --workers 2 --port 8100
    python -m repro.cli loadgen --url http://127.0.0.1:8100 --concurrency 16
    python -m repro.cli profile resnet18-w0.25-F4 --backends fast,int8
    python -m repro.cli trace --workers 2 --export trace.json

(Installed via the ``repro`` console script: ``repro serve ...``.)

``run`` prints (and optionally writes) each experiment's
measured-vs-published report; see EXPERIMENTS.md for how to read them.
``infer`` compiles a smoke model with :mod:`repro.engine` and reports
compiled-plan wall-clock (optionally against the eager forward).
``bench`` runs any benchmark registered in :mod:`repro.bench` and writes
its ``BENCH_*.json`` report.
``compile`` builds a variant ahead of time and writes a plan artifact
(:mod:`repro.engine.artifact`, spec in docs/artifact-format.md) that
``serve`` and every worker process then ``mmap`` instead of compiling —
the compile-then-deploy flow in docs/operations.md.
``serve`` starts the dynamic-batching inference server
(:mod:`repro.serve`) over one or more compiled variants or artifact
files; ``loadgen`` drives a running server with concurrent closed-loop
clients, or with ``--sweep`` runs the full self-contained policy
benchmark that writes ``BENCH_serve.json``.
``profile`` prints a traced per-step latency table for one variant and
``trace`` exports a Perfetto-loadable Chrome trace of a serving run;
both are documented in docs/observability.md.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Optional, Sequence

EXPERIMENTS = (
    "table1",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "ablation_points",
    "ablation_dense_transforms",
    "ablation_quant_stages",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'Searching for Winograd-aware "
        "Quantized Networks' (MLSys 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=EXPERIMENTS)
    run.add_argument("--scale", default="smoke", choices=("smoke", "quick", "paper"))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--verbose", action="store_true")
    run.add_argument("--out", default=None, help="also write the report to this file")

    infer = sub.add_parser(
        "infer",
        help="run compiled-engine inference on a smoke model",
        description="Compile one smoke-model variant and report plan "
        "wall-clock; the engine layers involved are mapped in "
        "docs/architecture.md ('Layer map').",
    )
    infer.add_argument(
        "--model",
        default="resnet18",
        choices=("lenet", "resnet18", "squeezenet", "resnext20"),
        help="smoke-model architecture (default resnet18)",
    )
    infer.add_argument(
        "--algorithm",
        default="F4",
        help="conv spec name: im2row, F2, F4, F6, F4-flex, ... (default F4)",
    )
    infer.add_argument(
        "--quant",
        default="fp32",
        help="quantization config: fp32 / int8 / int10 / int16 "
        "(numerics contracts: docs/architecture.md "
        "'Bit-exactness contracts')",
    )
    infer.add_argument(
        "--width",
        type=float,
        default=None,
        help="width multiplier (default: 0.25 for resnet18, 0.5 for "
        "squeezenet/resnext20; ignored by lenet)",
    )
    infer.add_argument(
        "--batch", type=int, default=8, help="batch size per timed run (default 8)"
    )
    infer.add_argument(
        "--backend",
        default="fast",
        choices=("fast", "reference", "turbo", "int8"),
        help="engine backend (contract per backend: docs/architecture.md "
        "'Backends')",
    )
    infer.add_argument(
        "--repeats", type=int, default=5, help="timed repeats (default 5)"
    )
    infer.add_argument(
        "--seed", type=int, default=0, help="weight/init RNG seed (default 0)"
    )
    infer.add_argument(
        "--threads",
        type=int,
        default=None,
        help="engine threads per plan run (0 = all cores; default "
        "REPRO_THREADS or 1; decision table: docs/operations.md "
        "'Threads, workers, replicas')",
    )
    infer.add_argument(
        "--compare", action="store_true", help="also time the eager forward"
    )
    infer.add_argument(
        "--describe", action="store_true", help="print the compiled plan's steps"
    )

    compile_ = sub.add_parser(
        "compile",
        help="AOT-compile a variant to a plan artifact (mmap'd by serve)",
        description="Build and compile one variant ahead of time and "
        "write a versioned plan artifact; 'repro serve --model "
        "<path>' and its workers then mmap the artifact instead of "
        "compiling (docs/operations.md 'Compile-then-deploy'; byte "
        "layout: docs/artifact-format.md).",
    )
    compile_.add_argument(
        "model",
        nargs="?",
        default=None,
        help="variant name, e.g. resnet18-w0.25-F4-int8@int8 "
        "(omit with --inspect)",
    )
    compile_.add_argument(
        "-o",
        "--out",
        default=None,
        help="artifact output path (default: <variant-name>.rpln; "
        "format: docs/artifact-format.md)",
    )
    compile_.add_argument(
        "--seed",
        type=int,
        default=0,
        help="weight/calibration RNG seed baked into the artifact "
        "(default 0; must match the serving spec seed for "
        "bit-identical responses)",
    )
    compile_.add_argument(
        "--inspect",
        metavar="PATH",
        default=None,
        help="print an existing artifact's manifest summary instead of "
        "compiling (sections: docs/artifact-format.md 'Manifest')",
    )

    serve = sub.add_parser(
        "serve",
        help="start the dynamic-batching inference server (repro.serve)",
        description="Serve one or more compiled variants over HTTP; "
        "topology knobs and the scaling decision table live in "
        "docs/operations.md ('Threads, workers, replicas').",
    )
    serve.add_argument(
        "--model",
        action="append",
        dest="models",
        metavar="NAME_OR_PATH",
        help="served variant name (e.g. resnet18-w0.25-F4-int8) or a "
        "compiled plan artifact path from 'repro compile' — workers "
        "mmap artifacts instead of compiling (docs/operations.md "
        "'Compile-then-deploy'); repeat for several (default: "
        "resnet18-w0.25-F4-int8)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8100, help="bind port; 0 = ephemeral"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes with shared-memory tensor transport "
        "(0 = in-process serving, the exact single-process path; "
        "docs/operations.md 'Threads, workers, replicas')",
    )
    serve.add_argument(
        "--worker-replicas",
        type=int,
        default=None,
        help="processes each model is placed on (default min(workers, 2); "
        "raise for single-model deployments that should use every "
        "worker; docs/operations.md 'Threads, workers, replicas')",
    )
    serve.add_argument(
        "--executor-threads",
        type=int,
        default=None,
        help="dispatch threads pushing batches off the event loop "
        "(default: auto)",
    )
    serve.add_argument(
        "--threads",
        type=int,
        default=None,
        help="engine threads per dispatched batch (0 = all cores; "
        "default REPRO_THREADS or 1; docs/operations.md "
        "'Threads, workers, replicas')",
    )
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=8,
        help="largest dynamic batch the batcher stacks (default 8; "
        "docs/operations.md 'Batching policy')",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="longest a request waits for batch-mates (default 2; "
        "docs/operations.md 'Batching policy')",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=128,
        help="per-model queue bound; beyond it requests get HTTP 503 "
        "(default 128; docs/operations.md 'Batching policy')",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=2000.0,
        help="default per-request deadline, <= 0 disables (default 2000; "
        "docs/operations.md 'Batching policy')",
    )
    serve.add_argument(
        "--trace-rate",
        type=float,
        default=None,
        help="fraction of requests recorded as span trees, 0..1 "
        "(default: 1.0 when REPRO_TRACE=1, else 0; inspect via GET "
        "/trace or 'repro trace --url'; docs/observability.md)",
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=0.0,
        help="per-tenant admission rate, requests/s (0 disables tenant "
        "buckets; docs/operations.md 'Overload & incident runbook')",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=10.0,
        help="per-tenant token-bucket burst size (default 10; "
        "docs/operations.md 'Overload & incident runbook')",
    )
    serve.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="seeded fault injection in the worker pool, e.g. "
        "'seed=7,worker_crash=0.05,shm_delay=0.2:15' (default: the "
        "REPRO_CHAOS env var; needs --workers; "
        "docs/operations.md 'Overload & incident runbook')",
    )
    serve.add_argument(
        "--drain-trace-out",
        default=None,
        metavar="PATH",
        help="on SIGTERM, flush the span buffer to this Chrome-trace "
        "file after the graceful drain (docs/operations.md "
        "'Overload & incident runbook')",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="crash-consistent control-plane journal directory: deploys, "
        "replica scales and brownout rungs are fsync'd here and "
        "replayed on boot, so a kill -9 + restart recovers the full "
        "serving state with zero manual re-deploys "
        "(docs/operations.md 'Self-healing & autoscaling runbook')",
    )
    serve.add_argument(
        "--ladder",
        action="append",
        dest="ladders",
        metavar="MODEL=V1>V2",
        help="brownout ladder: fallback variants served under MODEL's "
        "name when shed/deadline pressure persists at max replicas "
        "(e.g. 'resnet18-w0.25-F4-fp32=resnet18-w0.25-F4-int8'); "
        "responses carry X-Served-Variant; repeatable; fallbacks are "
        "auto-loaded (docs/operations.md 'Self-healing & autoscaling "
        "runbook')",
    )
    serve.add_argument(
        "--autoscale",
        action="store_true",
        help="enable the per-model replica autoscaler (worker mode "
        "only): queue fill and shed/deadline-miss deltas move each "
        "model's replica count within [--autoscale-min, "
        "--autoscale-max] under hysteresis, cooldowns and flap "
        "suppression (docs/operations.md 'Self-healing & autoscaling "
        "runbook')",
    )
    serve.add_argument(
        "--autoscale-min",
        type=int,
        default=1,
        metavar="N",
        help="autoscaler floor, replicas per model (default 1; "
        "docs/operations.md 'Self-healing & autoscaling runbook')",
    )
    serve.add_argument(
        "--autoscale-max",
        type=int,
        default=None,
        metavar="N",
        help="autoscaler ceiling, replicas per model (default: "
        "--workers; docs/operations.md 'Self-healing & autoscaling "
        "runbook')",
    )
    serve.add_argument(
        "--circuit-threshold",
        type=int,
        default=None,
        metavar="N",
        help="consecutive deterministic model errors (HTTP 500s) that "
        "open a model's circuit breaker: requests fail fast with 503 "
        "+ Retry-After until a half-open probe batch passes (default "
        "5 when self-healing is active; docs/operations.md "
        "'Self-healing & autoscaling runbook')",
    )

    bench = sub.add_parser(
        "bench",
        help="run a registered benchmark and write its BENCH_*.json",
        description="Run one registered benchmark; serving-side reports "
        "are documented field by field in docs/operations.md "
        "('Benchmark reports').",
    )
    bench.add_argument(
        "name",
        help="benchmark name (see 'repro bench list'), or 'list'",
    )
    bench.add_argument(
        "--quick", action="store_true", help="fewer repeats, for CI smoke"
    )
    bench.add_argument(
        "--seed", type=int, default=0, help="benchmark RNG seed (default 0)"
    )
    bench.add_argument(
        "--out", default=None, help="report path (default: BENCH_<name>.json at repo root)"
    )
    bench.add_argument(
        "--threads",
        type=int,
        default=None,
        help="threaded-speedup thread count for the engine benchmark "
        "(0 = all cores; default REPRO_THREADS or all cores; "
        "docs/operations.md 'Threads, workers, replicas')",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running server, or --sweep the policy benchmark",
        description="Closed-loop load generation against a running "
        "server, or a self-contained --sweep writing BENCH_serve.json "
        "(fields: docs/operations.md 'Benchmark reports').",
    )
    loadgen.add_argument(
        "--url", default=None, help="base URL of a running server"
    )
    loadgen.add_argument(
        "--model",
        default=None,
        help="model name (default: the server's only loaded model; "
        "for --sweep: resnet18-w0.25-F4-int8@turbo)",
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=16,
        help="concurrent closed-loop clients (default 16)",
    )
    loadgen.add_argument(
        "--requests",
        type=int,
        default=256,
        help="total requests (per sweep level with --sweep; default 256)",
    )
    loadgen.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline forwarded to the server "
        "(docs/operations.md 'Batching policy')",
    )
    loadgen.add_argument(
        "--sweep",
        action="store_true",
        help="self-contained concurrency x policy benchmark (no --url "
        "needed; writes BENCH_serve.json, see docs/operations.md "
        "'Benchmark reports')",
    )
    loadgen.add_argument(
        "--quick", action="store_true", help="smaller --sweep for CI smoke"
    )
    loadgen.add_argument(
        "--workers",
        type=int,
        default=0,
        help="--sweep server worker processes (0 = in-process baseline; "
        "docs/operations.md 'Threads, workers, replicas')",
    )
    loadgen.add_argument(
        "--workers-scale",
        type=int,
        default=2,
        help="--sweep also measures this many worker processes at top "
        "concurrency and records the workers_scaling entry (0 disables)",
    )
    loadgen.add_argument(
        "--out", default=None, help="--sweep report path (default BENCH_serve.json)"
    )
    loadgen.add_argument(
        "--dump-slowest",
        type=int,
        default=0,
        metavar="N",
        help="after the run, fetch the span trees of the N "
        "worst-latency requests from a traced server (needs the "
        "server started with --trace-rate 1; docs/observability.md "
        "'Finding slow requests')",
    )
    loadgen.add_argument(
        "--dump-out",
        default="slowest_traces.json",
        help="where --dump-slowest writes its span trees "
        "(default slowest_traces.json)",
    )
    loadgen.add_argument(
        "--open-loop",
        type=float,
        default=None,
        metavar="RATE",
        help="open-loop mode: offered request rate (req/s) on a seeded "
        "Poisson schedule instead of closed-loop workers — arrivals "
        "never wait for responses, so an overloaded server stays "
        "offered-overloaded (docs/operations.md 'Overload & incident "
        "runbook')",
    )
    loadgen.add_argument(
        "--duration",
        type=float,
        default=2.0,
        help="--open-loop run length in seconds (default 2)",
    )
    loadgen.add_argument(
        "--priority",
        default=None,
        choices=("interactive", "standard", "batch"),
        help="admission class stamped on generated requests "
        "(docs/operations.md 'Overload & incident runbook')",
    )
    loadgen.add_argument(
        "--tenant",
        default=None,
        help="tenant id stamped on generated requests (exercises the "
        "per-tenant admission buckets; docs/operations.md "
        "'Overload & incident runbook')",
    )
    loadgen.add_argument(
        "--seed",
        type=int,
        default=0,
        help="arrival-schedule RNG seed for --open-loop/--overload "
        "(default 0)",
    )
    loadgen.add_argument(
        "--overload",
        action="store_true",
        help="standalone overload-honesty benchmark: measure capacity, "
        "offer 2x on an open loop, report goodput + honesty checks "
        "and write an {'overload_goodput': ...} fragment to --out "
        "(docs/operations.md 'Benchmark reports')",
    )

    profile = sub.add_parser(
        "profile",
        help="per-step latency table of a compiled variant (Figure 8)",
        description="Compile one variant with tracing on and print a "
        "per-step (per-layer) latency table — the engine-level view "
        "behind the paper's Figure 8 — optionally diffing several "
        "backends side by side.  Span model and table columns: "
        "docs/observability.md ('Profiling a plan').",
    )
    profile.add_argument(
        "model",
        help="variant name, e.g. resnet18-w0.25-F4-int8 (a name "
        "without a precision suffix profiles the fp32 variant)",
    )
    profile.add_argument(
        "--batch", type=int, default=8, help="batch size per run (default 8)"
    )
    profile.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="traced repeats; each step reports its median (default 5)",
    )
    profile.add_argument(
        "--seed", type=int, default=0, help="weight/input RNG seed (default 0)"
    )
    profile.add_argument(
        "--threads",
        type=int,
        default=None,
        help="engine threads (0 = all cores; default REPRO_THREADS or 1; "
        "docs/operations.md 'Threads, workers, replicas')",
    )
    profile.add_argument(
        "--backends",
        default=None,
        help="comma-separated backends to profile and diff side by side "
        "(e.g. fast,int8); default: the variant's own backend",
    )
    profile.add_argument(
        "--out",
        default=None,
        help="also write the raw profile dict(s) as JSON to this path",
    )

    trace = sub.add_parser(
        "trace",
        help="export a Perfetto-loadable trace from a (or a fresh) server",
        description="Fetch a running server's span buffer as Chrome "
        "trace-event JSON (--url), or start a fully-traced throwaway "
        "server, fire a few requests through it, and export those.  "
        "Open the file at https://ui.perfetto.dev; span model and "
        "pid/tid mapping: docs/observability.md ('Exporting to "
        "Perfetto').",
    )
    trace.add_argument(
        "--url",
        default=None,
        help="base URL of a running traced server (omit for the "
        "self-contained mode, which starts its own)",
    )
    trace.add_argument(
        "--export",
        default="trace.json",
        metavar="PATH",
        help="output path for the Chrome trace-event JSON "
        "(default trace.json)",
    )
    trace.add_argument(
        "--request-id",
        default=None,
        help="restrict the export to one request's span tree",
    )
    trace.add_argument(
        "--model",
        default="lenet-F2-fp32",
        help="self-contained mode: variant to serve (default lenet-F2-fp32)",
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=0,
        help="self-contained mode: worker processes, so the trace "
        "covers the shm transport + worker execution too (default 0 "
        "= in-process; docs/operations.md 'Threads, workers, replicas')",
    )
    trace.add_argument(
        "--requests",
        type=int,
        default=8,
        help="self-contained mode: traced requests to fire (default 8)",
    )
    return parser


def run_infer(args) -> int:
    """The ``repro infer`` subcommand: compile, execute, report latency."""
    import numpy as np

    from repro.engine import get_cached_plan, measure_callable_ms, measure_plan_ms
    from repro.serve.registry import ModelSpec, build_model

    try:
        model_spec = ModelSpec(
            architecture=args.model,
            width=args.width,
            algorithm=args.algorithm,
            precision=args.quant,
            backend=args.backend,
            seed=args.seed,
        )
        model, (channels, image_size) = build_model(model_spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal((args.batch, channels, image_size, image_size)).astype(
        np.float32
    )

    from repro.engine import resolve_threads

    plan = get_cached_plan(model, x.shape, backend=args.backend)
    threads = resolve_threads(args.threads)
    out = plan.run(x, threads=threads)
    engine_ms = measure_plan_ms(
        plan, x, repeats=args.repeats, warmup=2, threads=threads
    )
    print(
        f"{model_spec.name} batch={args.batch} {image_size}x{image_size} "
        f"-> output {out.shape}"
    )
    print(
        f"engine[{args.backend}] threads={threads}: {engine_ms:8.2f} ms/batch "
        f"({1e3 * args.batch / engine_ms:7.1f} img/s), {len(plan)} steps"
    )
    if args.compare:
        from repro.autograd import Tensor, no_grad

        def eager():
            with no_grad():
                return model(Tensor(x))

        eager_out = eager().data
        eager_ms = measure_callable_ms(eager, repeats=args.repeats, warmup=2)
        diff = float(np.abs(out - eager_out).max())
        print(
            f"eager:          {eager_ms:8.2f} ms/batch "
            f"({1e3 * args.batch / eager_ms:7.1f} img/s)"
        )
        print(f"speedup: {eager_ms / engine_ms:.2f}x   max|engine - eager| = {diff:.3g}")
    if args.describe:
        print()
        print("\n".join(plan.describe()))
    return 0


def run_compile(args) -> int:
    """The ``repro compile`` subcommand: AOT-compile to a plan artifact.

    The artifact (byte layout in docs/artifact-format.md) is what
    ``repro serve --model <path>`` and its worker processes ``mmap``
    instead of compiling — the compile-then-deploy flow in
    docs/operations.md.
    """
    import json

    from repro.engine.artifact import ArtifactError, read_manifest

    if args.inspect:
        try:
            manifest = read_manifest(args.inspect, verify=True)
        except (OSError, ArtifactError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        plan_info = manifest["plan"]
        tensors = manifest["tensors"]
        # Residency edges straight off the encoded step docs: the shared
        # producer/consumer dict appears as one __obj__ plus a __ref__
        # back-edge (order depends on which step encoded it first).
        out_by_id = {}
        for i, step_doc in enumerate(manifest["steps"]):
            attrs = (step_doc.get("attrs") or {}).get("v") or {}
            ro = attrs.get("resident_out")
            if isinstance(ro, dict):
                ref = ro.get("__obj__", ro.get("__ref__"))
                if ref is not None:
                    out_by_id[ref] = (i, ro.get("v") or {})
        residency = []
        for j, step_doc in enumerate(manifest["steps"]):
            attrs = (step_doc.get("attrs") or {}).get("v") or {}
            rs = attrs.get("resident_src")
            if not isinstance(rs, dict):
                continue
            ref = rs.get("__ref__", rs.get("__obj__"))
            if ref in out_by_id:
                i, ro = out_by_id[ref]
                residency.append(
                    {
                        "producer": i,
                        "consumer": j,
                        "tile": f"F({ro.get('m')},{ro.get('r')})",
                        "per_tap": bool(ro.get("per_tap")),
                    }
                )
        summary = {
            "path": args.inspect,
            "format_version": manifest["format"]["version"],
            "model": (manifest.get("extra") or {}).get("model"),
            "seed": (manifest.get("extra") or {}).get("seed"),
            "backend": plan_info["backend"],
            "signature": plan_info["signature"],
            "steps": len(manifest["steps"]),
            "registers": plan_info["num_regs"],
            "input_shape": plan_info["input_shape"],
            "tensors": len(tensors),
            "tensor_bytes": sum(t["nbytes"] for t in tensors),
            "residency": residency,
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    if not args.model:
        print("error: a variant name (or --inspect PATH) is required",
              file=sys.stderr)
        return 2
    import time

    from repro.engine import CompileError
    from repro.engine.artifact import save_plan
    from repro.serve.registry import ARCHITECTURES, ModelSpec, compile_served

    try:
        spec = ModelSpec.parse(args.model)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.seed:
        import dataclasses

        spec = dataclasses.replace(spec, seed=args.seed)
    out = args.out or f"{spec.name}.rpln"
    t0 = time.perf_counter()
    try:
        served = compile_served(spec)
    except (ValueError, CompileError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    compile_ms = (time.perf_counter() - t0) * 1e3
    channels, size, _ = ARCHITECTURES[spec.architecture]
    try:
        summary = save_plan(
            served.plan,
            out,
            input_shape=(1, channels, size, size),
            extra={"model": spec.name, "seed": spec.seed},
        )
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"compiled {spec.name} in {compile_ms:.0f} ms -> {out} "
        f"({summary['file_size'] / 1e6:.1f} MB, {summary['tensors']} tensors, "
        f"hash {summary['content_hash'][:12]})"
    )
    print(
        "deploy: repro serve --model "
        f"{out} [--workers N]   (docs/operations.md 'Compile-then-deploy')"
    )
    return 0


def run_serve(args) -> int:
    """The ``repro serve`` subcommand: load variants, serve until ^C.

    SIGTERM triggers the graceful-drain path: stop intake (503 +
    Retry-After), let every in-flight batch finish, optionally flush the
    span buffer (``--drain-trace-out``), then exit 0
    (docs/operations.md 'Overload & incident runbook').
    """
    import asyncio
    import os
    import signal

    from repro.engine import CompileError
    from repro.serve import (
        AdmissionPolicy,
        BatchPolicy,
        InferenceServer,
        ModelRegistry,
    )

    policy = BatchPolicy(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        default_deadline_ms=args.deadline_ms,
    )
    admission = AdmissionPolicy(
        tenant_rate=args.tenant_rate, tenant_burst=args.tenant_burst
    )
    chaos = args.chaos if args.chaos is not None else os.environ.get("REPRO_CHAOS")
    if chaos and args.workers <= 0:
        print("error: --chaos needs --workers >= 1", file=sys.stderr)
        return 2
    from repro.serve.autoscale import AutoscalePolicy
    from repro.serve.selfheal import (
        SelfHealPolicy,
        ServeConfigError,
        parse_ladder_spec,
    )

    # Parse ladder specs before touching the registry: a typo must fail
    # at boot with exit 2, not after models compiled.
    ladders = {}
    try:
        for spec_text in args.ladders or []:
            ladder_model, fallbacks = parse_ladder_spec(spec_text)
            if ladder_model in ladders:
                raise ServeConfigError(
                    f"duplicate --ladder for model {ladder_model!r}"
                )
            ladders[ladder_model] = fallbacks
    except ServeConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # With process workers the front-end never compiles: it records the
    # specs (lazy registry) and each worker builds its affinity slice.
    registry = ModelRegistry(lazy=args.workers > 0)
    # Ladder rungs must be servable the instant a brownout steps down,
    # so fallback variants load alongside the primary models.
    ladder_extras = [
        variant
        for chain in ladders.values()
        for variant in chain
    ]
    for name in (args.models or ["resnet18-w0.25-F4-int8"]) + ladder_extras:
        if name in registry:
            continue
        try:
            served = registry.load(name)
        except (ValueError, CompileError) as exc:  # bad name or @backend
            print(f"error: {exc}", file=sys.stderr)
            return 2
        suffix = " (brownout fallback)" if name in ladder_extras else ""
        if served.plan is None:
            print(f"registered {served.name} (compiles in the workers){suffix}")
        else:
            plan = served.plan
            print(
                f"loaded {served.name}: {len(plan)} steps, "
                f"backend={plan.backend}{suffix}"
            )
    selfheal = None
    if (
        args.autoscale
        or ladders
        or args.state_dir
        or args.circuit_threshold is not None
    ):
        autoscale = None
        if args.autoscale:
            try:
                autoscale = AutoscalePolicy(
                    min_replicas=args.autoscale_min,
                    max_replicas=(
                        args.autoscale_max
                        if args.autoscale_max is not None
                        else max(args.workers, 1)
                    ),
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        selfheal = SelfHealPolicy(
            autoscale=autoscale,
            ladders=ladders,
            circuit_threshold=(
                args.circuit_threshold
                if args.circuit_threshold is not None
                else 5
            ),
        )
    from repro.engine import resolve_threads

    threads = resolve_threads(args.threads)
    try:
        server = InferenceServer(
            registry,
            policy=policy,
            host=args.host,
            port=args.port,
            workers=args.workers,
            worker_replicas=args.worker_replicas,
            executor_threads=args.executor_threads,
            threads=threads,
            trace_rate=args.trace_rate,
            admission=admission,
            chaos=chaos,
            selfheal=selfheal,
            state_dir=args.state_dir,
        )
    except ServeConfigError as exc:
        # Typed topology rejection: bad replica/ladder/state-dir wiring
        # dies here, before any socket bind or worker fork.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def _run() -> None:
        await server.start()
        mode = (
            f"{server.workers} worker processes, shm transport"
            if server.workers
            else "in-process"
        )
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(max_batch_size={policy.max_batch_size}, "
            f"max_wait_ms={policy.max_wait_ms:g}, {mode}, "
            f"threads={threads})",
            flush=True,
        )
        if chaos:
            print(f"chaos injection active: {chaos}", flush=True)
        if selfheal is not None:
            bits = []
            if selfheal.autoscale is not None:
                bits.append(
                    f"autoscale {selfheal.autoscale.min_replicas}.."
                    f"{selfheal.autoscale.max_replicas}"
                )
            if selfheal.ladders:
                bits.append(f"brownout ladders: {len(selfheal.ladders)}")
            bits.append(f"circuit threshold {selfheal.circuit_threshold}")
            print("self-healing active: " + ", ".join(bits), flush=True)
        if args.state_dir:
            replay = server.journal_replay or {}
            print(
                f"state journal: {args.state_dir} (replayed "
                f"{replay.get('records', 0)} records, restored "
                f"{len(replay.get('deploys_restored') or [])} deploys)",
                flush=True,
            )
        print(
            "endpoints: POST /predict  GET /models /healthz /metrics /trace",
            flush=True,
        )
        sigterm = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, sigterm.set)
        except (NotImplementedError, RuntimeError):  # non-POSIX loop
            pass
        serve_task = asyncio.ensure_future(server.serve_forever())
        term_task = asyncio.ensure_future(sigterm.wait())
        try:
            await asyncio.wait(
                {serve_task, term_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if term_task.done():
                print("SIGTERM: draining in-flight requests", flush=True)
                drained = await server.drain(timeout=30.0)
                if args.drain_trace_out:
                    from repro.obs.export import write_chrome_trace

                    spans = server.trace_buffer.snapshot()
                    write_chrome_trace(args.drain_trace_out, spans)
                    print(
                        f"flushed {len(spans)} spans to "
                        f"{args.drain_trace_out}",
                        flush=True,
                    )
                print(
                    "drained cleanly" if drained else
                    "drain timed out; stopping anyway",
                    flush=True,
                )
        finally:
            for task in (serve_task, term_task):
                task.cancel()
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def run_loadgen(args) -> int:
    """The ``repro loadgen`` subcommand: load test a server (or --sweep)."""
    import json

    import numpy as np

    from repro.serve import ServeClient, benchmark_serving, run_load

    if args.overload:
        from repro.serve.loadgen import measure_overload_goodput

        entry = measure_overload_goodput(
            args.model or "resnet18-w0.25-F4-int8@turbo",
            workers=args.workers,
            quick=args.quick,
            seed=args.seed,
        )
        ok = entry["expired_executed"] == 0 and entry["unaccounted"] == 0
        if args.out:
            with open(args.out, "w") as fh:
                json.dump({"overload_goodput": entry}, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"overload report written to {args.out}")
        return 0 if ok else 1

    if args.sweep:
        report = benchmark_serving(
            model_name=args.model or "resnet18-w0.25-F4-int8@turbo",
            requests_per_level=args.requests,
            workers=args.workers,
            workers_scale=args.workers_scale,
            out_path=args.out or "BENCH_serve.json",
            quick=args.quick,
        )
        ok = report["bit_identical_reference"] and (
            report["bit_identical_workers"] is not False
        )
        return 0 if ok else 1

    if not args.url:
        print("error: --url is required (or use --sweep)", file=sys.stderr)
        return 2
    with ServeClient(args.url) as client:
        info = client.models()["models"]
        if args.model:
            matches = [m for m in info if m["name"] == args.model]
            if not matches:
                loaded = [m["name"] for m in info]
                print(f"error: {args.model!r} not loaded ({loaded})", file=sys.stderr)
                return 2
            target = matches[0]
        elif len(info) == 1:
            target = info[0]
        else:
            loaded = [m["name"] for m in info]
            print(f"error: choose --model from {loaded}", file=sys.stderr)
            return 2
    samples = (
        np.random.default_rng(0)
        .standard_normal((32, *target["sample_shape"]))
        .astype(np.float32)
    )
    if args.open_loop is not None:
        from repro.serve.loadgen import run_open_loop

        stats = run_open_loop(
            args.url,
            target["name"],
            samples,
            rate_rps=args.open_loop,
            duration_s=args.duration,
            classes=[
                {
                    "name": args.priority or "standard",
                    "priority": args.priority or "standard",
                    "deadline_ms": args.deadline_ms,
                    "tenant": args.tenant,
                }
            ],
            seed=args.seed,
        )
    else:
        stats = run_load(
            args.url,
            target["name"],
            samples,
            concurrency=args.concurrency,
            total_requests=args.requests,
            deadline_ms=args.deadline_ms,
        )
    print(json.dumps(stats, indent=2, sort_keys=True))
    if args.dump_slowest:
        from repro.serve.loadgen import dump_slowest

        dump = dump_slowest(
            args.url, stats, args.dump_slowest, args.dump_out
        )
        traced = sum(
            1 for e in dump["slowest"] if e.get("span_count")
        )
        print(
            f"dumped span trees of {len(dump['slowest'])} slowest "
            f"requests ({traced} with spans) to {args.dump_out}",
            file=sys.stderr,
        )
    return 0


def run_profile(args) -> int:
    """The ``repro profile`` subcommand: traced per-step latency table.

    The per-layer breakdown reproduces the shape of the paper's Figure 8
    (where each Winograd layer's latency is compared across variants);
    ``--backends a,b`` prints the side-by-side diff.  Columns and span
    semantics: docs/observability.md ('Profiling a plan').
    """
    import dataclasses
    import json

    import numpy as np

    from repro.engine import CompileError, resolve_threads
    from repro.obs.profile import (
        diff_profile_table,
        format_profile_table,
        profile_plan,
    )
    from repro.serve.registry import ModelSpec, compile_served

    try:
        spec = ModelSpec.parse(args.model)
    except ValueError:
        try:  # allow precision-less names: resnet18-w0.25-F4 -> fp32
            spec = ModelSpec.parse(args.model + "-fp32")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.seed:
        spec = dataclasses.replace(spec, seed=args.seed)
    backends = [
        b.strip() for b in (args.backends or "").split(",") if b.strip()
    ] or [spec.backend]
    threads = resolve_threads(args.threads)
    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal(
        (args.batch,) + spec.sample_shape
    ).astype(np.float32)

    profiles = {}
    for backend in backends:
        try:
            served = compile_served(
                dataclasses.replace(spec, backend=backend)
            )
        except (ValueError, CompileError) as exc:
            print(f"error: backend {backend!r}: {exc}", file=sys.stderr)
            return 2
        profiles[backend] = profile_plan(
            served.plan, x, repeats=args.repeats, threads=threads
        )

    if len(profiles) == 1:
        print(f"{spec.name} batch={args.batch} threads={threads}")
        print(format_profile_table(next(iter(profiles.values()))))
    else:
        for backend, prof in profiles.items():
            print(f"--- {spec.name}@{backend} "
                  f"batch={args.batch} threads={threads}")
            print(format_profile_table(prof))
            print()
        print("--- per-step diff (ms)")
        print(diff_profile_table(profiles))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(profiles, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"profile written to {args.out}")
    return 0


def run_trace(args) -> int:
    """The ``repro trace`` subcommand: export Chrome trace-event JSON.

    With ``--url`` it drains a running server's span buffer; without, it
    starts a fully-traced (``trace_rate=1.0``) throwaway server on an
    ephemeral port, fires ``--requests`` requests, and exports those —
    the one-command way to get a Perfetto-loadable file covering
    queue → batch → (shm → worker →) kernel (docs/observability.md).
    """
    import json

    from repro.obs.export import validate_chrome_trace

    def fetch_and_write(base_url: str) -> int:
        from repro.serve.client import ServeClient, ServeError

        with ServeClient(base_url) as client:
            try:
                doc = client.trace(
                    request_id=args.request_id, format="chrome"
                )
            except ServeError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        problems = validate_chrome_trace(doc)
        if problems:
            print(
                f"error: invalid trace document: {problems[:3]}",
                file=sys.stderr,
            )
            return 1
        with open(args.export, "w") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        events = doc["traceEvents"]
        procs = sorted(
            {e["args"]["name"] for e in events
             if e.get("ph") == "M" and e.get("name") == "process_name"}
        )
        print(
            f"wrote {args.export}: {len(events)} events across "
            f"processes {procs} — open at https://ui.perfetto.dev "
            f"(docs/observability.md 'Exporting to Perfetto')"
        )
        return 0

    if args.url:
        return fetch_and_write(args.url)

    # Self-contained mode: serve, fire, export, tear down.
    import numpy as np

    from repro.engine import CompileError
    from repro.serve import BatchPolicy, ModelRegistry
    from repro.serve.client import ServeClient, wait_until_ready
    from repro.serve.server import start_in_background

    registry = ModelRegistry(lazy=args.workers > 0)
    try:
        served = registry.load(args.model)
    except (ValueError, CompileError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    policy = BatchPolicy(max_batch_size=4, max_wait_ms=5.0)
    handle = start_in_background(
        registry, policy=policy, port=0, workers=args.workers,
        worker_replicas=args.workers or None, trace_rate=1.0,
    )
    try:
        wait_until_ready(handle.base_url)
        shape = served.sample_shape
        rng = np.random.default_rng(0)
        with ServeClient(handle.base_url) as client:
            for i in range(max(1, args.requests)):
                x = rng.standard_normal(shape).astype(np.float32)
                client.predict_raw(
                    x, model=served.name, request_id=f"trace-{i}"
                )
        return fetch_and_write(handle.base_url)
    finally:
        handle.stop()


def run_bench(args) -> int:
    """The ``repro bench`` subcommand: run a registered benchmark."""
    import json

    from repro.bench import BENCHMARKS, run_benchmark

    if args.name == "list":
        for name, (_, description) in sorted(BENCHMARKS.items()):
            print(f"{name:12s} {description}")
        return 0
    if args.name not in BENCHMARKS:
        print(
            f"error: unknown benchmark {args.name!r}; "
            f"choose from {sorted(BENCHMARKS)} (or 'list')",
            file=sys.stderr,
        )
        return 2
    report = run_benchmark(
        args.name,
        out=args.out,
        quick=args.quick,
        seed=args.seed,
        threads=args.threads,
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "infer":
        return run_infer(args)
    if args.command == "compile":
        return run_compile(args)
    if args.command == "bench":
        return run_bench(args)
    if args.command == "profile":
        return run_profile(args)
    if args.command == "trace":
        return run_trace(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "loadgen":
        return run_loadgen(args)
    if args.command == "list":
        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:28s} {doc}")
        return 0

    module = importlib.import_module(f"repro.experiments.{args.experiment}")
    kwargs = {"scale": args.scale, "seed": args.seed}
    if "verbose" in module.run.__code__.co_varnames:
        kwargs["verbose"] = args.verbose
    report = module.run(**kwargs)
    text = report.format()
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
