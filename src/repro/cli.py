"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1 --scale smoke --seed 0
    python -m repro.cli run figure7
    python -m repro.cli run figure4 --scale quick --out figure4.txt
    python -m repro.cli infer --model resnet18 --algorithm F4 --compare

``run`` prints (and optionally writes) each experiment's
measured-vs-published report; see EXPERIMENTS.md for how to read them.
``infer`` compiles a smoke model with :mod:`repro.engine` and reports
compiled-plan wall-clock (optionally against the eager forward).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Optional, Sequence

EXPERIMENTS = (
    "table1",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "ablation_points",
    "ablation_dense_transforms",
    "ablation_quant_stages",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'Searching for Winograd-aware "
        "Quantized Networks' (MLSys 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=EXPERIMENTS)
    run.add_argument("--scale", default="smoke", choices=("smoke", "quick", "paper"))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--verbose", action="store_true")
    run.add_argument("--out", default=None, help="also write the report to this file")

    infer = sub.add_parser(
        "infer", help="run compiled-engine inference on a smoke model"
    )
    infer.add_argument(
        "--model",
        default="resnet18",
        choices=("lenet", "resnet18", "squeezenet", "resnext20"),
    )
    infer.add_argument(
        "--algorithm",
        default="F4",
        help="conv spec name: im2row, F2, F4, F6, F4-flex, ... (default F4)",
    )
    infer.add_argument("--quant", default="fp32", help="fp32 / int8 / int10 / int16")
    infer.add_argument(
        "--width",
        type=float,
        default=None,
        help="width multiplier (default: 0.25 for resnet18, 0.5 for "
        "squeezenet/resnext20; ignored by lenet)",
    )
    infer.add_argument("--batch", type=int, default=8)
    infer.add_argument("--backend", default="fast", choices=("fast", "reference"))
    infer.add_argument("--repeats", type=int, default=5)
    infer.add_argument("--seed", type=int, default=0)
    infer.add_argument(
        "--compare", action="store_true", help="also time the eager forward"
    )
    infer.add_argument(
        "--describe", action="store_true", help="print the compiled plan's steps"
    )
    return parser


def _build_infer_model(name: str, spec, width, rng):
    """Instantiate one of the smoke models with a uniform conv spec."""
    if name == "lenet":
        from repro.models.lenet import lenet

        return lenet(spec=spec, rng=rng), (1, 28)
    if name == "resnet18":
        from repro.models.resnet import resnet18

        wm = 0.25 if width is None else width
        return resnet18(width_multiplier=wm, spec=spec, rng=rng), (3, 32)
    if name == "squeezenet":
        from repro.models.squeezenet import squeezenet

        wm = 0.5 if width is None else width
        return squeezenet(width_multiplier=wm, spec=spec, rng=rng), (3, 32)
    if name == "resnext20":
        from repro.models.resnext import resnext20

        wm = 0.5 if width is None else width
        return resnext20(width_multiplier=wm, spec=spec, rng=rng), (3, 32)
    raise ValueError(f"unknown model {name!r}")


def run_infer(args) -> int:
    """The ``repro infer`` subcommand: compile, execute, report latency."""
    import numpy as np

    from repro.engine import get_cached_plan, measure_callable_ms, measure_plan_ms
    from repro.models.common import spec_from_name
    from repro.quant.qconfig import from_name

    rng = np.random.default_rng(args.seed)
    try:
        spec = spec_from_name(args.algorithm, from_name(args.quant))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    model, (channels, image_size) = _build_infer_model(args.model, spec, args.width, rng)
    model.eval()
    x = rng.standard_normal((args.batch, channels, image_size, image_size)).astype(
        np.float32
    )

    plan = get_cached_plan(model, x.shape, backend=args.backend)
    out = plan.run(x)
    engine_ms = measure_plan_ms(plan, x, repeats=args.repeats, warmup=2)
    print(
        f"{args.model} ({spec.name}) batch={args.batch} {image_size}x{image_size} "
        f"-> output {out.shape}"
    )
    print(
        f"engine[{args.backend}]: {engine_ms:8.2f} ms/batch "
        f"({1e3 * args.batch / engine_ms:7.1f} img/s), {len(plan)} steps"
    )
    if args.compare:
        from repro.autograd import Tensor, no_grad

        def eager():
            with no_grad():
                return model(Tensor(x))

        eager_out = eager().data
        eager_ms = measure_callable_ms(eager, repeats=args.repeats, warmup=2)
        diff = float(np.abs(out - eager_out).max())
        print(
            f"eager:          {eager_ms:8.2f} ms/batch "
            f"({1e3 * args.batch / eager_ms:7.1f} img/s)"
        )
        print(f"speedup: {eager_ms / engine_ms:.2f}x   max|engine - eager| = {diff:.3g}")
    if args.describe:
        print()
        print("\n".join(plan.describe()))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "infer":
        return run_infer(args)
    if args.command == "list":
        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:28s} {doc}")
        return 0

    module = importlib.import_module(f"repro.experiments.{args.experiment}")
    kwargs = {"scale": args.scale, "seed": args.seed}
    if "verbose" in module.run.__code__.co_varnames:
        kwargs["verbose"] = args.verbose
    report = module.run(**kwargs)
    text = report.format()
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
