"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1 --scale smoke --seed 0
    python -m repro.cli run figure7
    python -m repro.cli run figure4 --scale quick --out figure4.txt

Each experiment prints (and optionally writes) its measured-vs-published
report; see EXPERIMENTS.md for how to read them.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Optional, Sequence

EXPERIMENTS = (
    "table1",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "ablation_points",
    "ablation_dense_transforms",
    "ablation_quant_stages",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'Searching for Winograd-aware "
        "Quantized Networks' (MLSys 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=EXPERIMENTS)
    run.add_argument("--scale", default="smoke", choices=("smoke", "quick", "paper"))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--verbose", action="store_true")
    run.add_argument("--out", default=None, help="also write the report to this file")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:28s} {doc}")
        return 0

    module = importlib.import_module(f"repro.experiments.{args.experiment}")
    kwargs = {"scale": args.scale, "seed": args.seed}
    if "verbose" in module.run.__code__.co_varnames:
        kwargs["verbose"] = args.verbose
    report = module.run(**kwargs)
    text = report.format()
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
