"""Deterministic fault injector.

``ChaosInjector(spec, scope)`` owns a private ``random.Random`` whose
state is a pure function of ``(spec.seed, scope)``.  The scope string
names the injection site — for workers it is
``worker-<id>/gen-<respawn generation>`` so a respawned worker draws a
*different* (but still reproducible) fault sequence instead of
deterministically re-hitting the crash that killed its predecessor,
which would otherwise turn any ``worker_crash=1.0`` spec into an
unrecoverable crash loop.

The seed is mixed with ``zlib.crc32`` of the scope rather than Python's
``hash`` — ``hash(str)`` is salted per process (PYTHONHASHSEED) and
would silently break cross-process determinism.
"""

from __future__ import annotations

import random
import zlib

from .spec import ChaosSpec


class ChaosInjector:
    """Per-site deterministic fault roller for a parsed chaos spec."""

    def __init__(self, spec: ChaosSpec, scope: str):
        self.spec = spec
        self.scope = scope
        self._rng = random.Random(
            ((spec.seed & 0xFFFFFFFF) << 32) ^ zlib.crc32(scope.encode("utf-8"))
        )
        self.injected: dict = {}

    def roll(self, fault: str) -> bool:
        """One injection decision.  Always draws (even at probability 0)
        so adding or removing one fault from a spec does not shift the
        draw sequence of the others."""
        draw = self._rng.random()
        prob = self.spec.probability(fault)
        hit = draw < prob
        if hit:
            self.injected[fault] = self.injected.get(fault, 0) + 1
        return hit

    def duration_s(self, fault: str) -> float:
        return self.spec.duration_ms(fault) / 1000.0

    def pick_index(self, n: int) -> int:
        """Deterministic index draw (e.g. which byte to corrupt)."""
        if n <= 0:
            return 0
        return self._rng.randrange(n)
