"""Chaos-spec grammar: parse ``seed=7,worker_crash=0.05,shm_delay=0.2:15``.

A spec is a comma-separated list of clauses.  ``seed=INT`` seeds the
deterministic injector; every other clause is ``FAULT=PROB`` or
``FAULT=PROB:MILLIS`` where PROB is a per-decision probability in
``[0, 1]`` and MILLIS parameterises duration-style faults (delay
length, slow-start stall).  Unknown faults and out-of-range
probabilities are rejected with ``ValueError`` at parse time — a typo
in a chaos spec must fail loudly at boot, not silently inject nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fault name -> default duration (ms) for duration-style faults.
#: ``None`` marks faults with no duration parameter.
FAULTS = {
    "worker_crash": None,       # os._exit mid-batch, before executing
    "worker_hang": None,        # livelock: stop answering, stay alive
    "worker_slow_start": 500.0, # stall boot before signalling ready
    "shm_delay": 20.0,          # delay the reply after writing the slot
    "pipe_drop": None,          # execute, then never send the reply
    "corrupt_response": None,   # flip a byte in the response payload
    "error_storm": 400.0,       # typed model errors for a burst window
    "crash_storm": 300.0,       # boot healthy, crash after MS (per gen)
}


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed chaos spec: a seed plus per-fault probability/duration."""

    seed: int = 0
    #: fault name -> (probability, duration_ms or None)
    faults: dict = field(default_factory=dict)

    def probability(self, fault: str) -> float:
        entry = self.faults.get(fault)
        return entry[0] if entry else 0.0

    def duration_ms(self, fault: str) -> float:
        entry = self.faults.get(fault)
        if entry and entry[1] is not None:
            return entry[1]
        return FAULTS.get(fault) or 0.0

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name, (prob, ms) in sorted(self.faults.items()):
            parts.append(f"{name}={prob:g}" + (f":{ms:g}" if ms is not None else ""))
        return ",".join(parts)


def parse_chaos_spec(text: str) -> ChaosSpec:
    """Parse a chaos spec string; raise ``ValueError`` on any malformed
    clause so bad specs fail at server boot rather than injecting a
    different experiment than the operator asked for."""
    seed = 0
    faults: dict = {}
    for raw in text.split(","):
        clause = raw.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"chaos clause {clause!r} is not KEY=VALUE")
        key, _, value = clause.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "seed":
            try:
                seed = int(value)
            except ValueError:
                raise ValueError(f"chaos seed {value!r} is not an integer") from None
            continue
        if key not in FAULTS:
            raise ValueError(
                f"unknown chaos fault {key!r} (known: {', '.join(sorted(FAULTS))})"
            )
        prob_text, _, ms_text = value.partition(":")
        try:
            prob = float(prob_text)
        except ValueError:
            raise ValueError(
                f"chaos fault {key}: probability {prob_text!r} is not a number"
            ) from None
        if not 0.0 <= prob <= 1.0:
            raise ValueError(
                f"chaos fault {key}: probability {prob} outside [0, 1]"
            )
        duration = None
        if ms_text:
            try:
                duration = float(ms_text)
            except ValueError:
                raise ValueError(
                    f"chaos fault {key}: duration {ms_text!r} is not a number"
                ) from None
            if duration < 0:
                raise ValueError(f"chaos fault {key}: negative duration {duration}")
        faults[key] = (prob, duration)
    return ChaosSpec(seed=seed, faults=faults)
