"""Seeded chaos / fault-injection harness for the serving stack.

The injector is *deterministic*: a chaos spec carries a seed, and every
injection decision is a pure function of ``(seed, scope, draw index)``
where *scope* names the injection site (worker id + respawn
generation).  Running the same spec against the same request sequence
reproduces the same faults — which is what lets the chaos test suite
assert exact outcomes (bit-identical retried response or typed error)
instead of merely "it didn't crash".

Grammar (``repro serve --chaos`` / ``REPRO_CHAOS``)::

    spec    := clause (',' clause)*
    clause  := 'seed=' INT | FAULT '=' PROB [':' MILLIS]
    FAULT   := worker_crash | worker_hang | worker_slow_start
             | shm_delay | pipe_drop | corrupt_response

Example: ``seed=7,worker_crash=0.05,shm_delay=0.2:15`` — with seed 7,
crash the worker on ~5% of batches and delay the shm reply by 15 ms on
~20% of batches.  See docs/operations.md "Overload & incident
runbook".
"""

from .spec import FAULTS, ChaosSpec, parse_chaos_spec
from .inject import ChaosInjector

__all__ = [
    "FAULTS",
    "ChaosSpec",
    "ChaosInjector",
    "parse_chaos_spec",
]
