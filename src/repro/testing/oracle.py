"""Exactness oracles for the ``int8`` backend (shared with PR 3 tests).

Two checks live here, factored out of ``tests/engine/test_int8_backend``
so the randomized differential harness can apply them to *any* model:

* :func:`int8_oracle_output` — run a model's ``int8`` plan with the GEMM
  hook replaced by :func:`exact_int64_matmul`.  The backend's contract
  is that its float GEMMs over integer-valued arrays are *exact* (the
  compile-time accumulator bounds guarantee it), so the native output
  must be **bit-identical** to this oracle.  That identity is what
  justifies any quantization-bin flip versus the float-composed
  ``reference`` backend: the int8 path computed the mathematically exact
  grid argument, so a flipped decision means the reference's float32
  composition landed on the other side of a bin boundary — not that the
  integer path is wrong.

* :func:`winograd_stem_flip_report` — the stage-level audit from PR 3,
  generalized: when a plan's *first* step is a quantized Winograd conv
  reading the plan input, recompute its transformed-input quantization
  codes both ways (float32 reference composition vs exact integer
  composition) and verify every flipped decision sits within float32
  rounding of a half-integer bin boundary.  A wrong requant multiplier,
  scale, or tile layout would flip decisions at arguments nowhere near a
  boundary, which this rejects.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

import numpy as np

import repro.engine.kernels as kernels
from repro.engine import compile_model


def exact_int64_matmul(a, b, out=None):
    """Oracle GEMM: exact integer arithmetic, no float accumulation.

    Accepts the kernels' ``out=`` placement (writing the int64 result
    into the caller's workspace casts each entry exactly — the values
    are below the mantissa bound by construction).
    """
    ai = np.rint(a).astype(np.int64)
    bi = np.rint(b).astype(np.int64)
    result = np.matmul(ai, bi)
    if out is not None:
        out[...] = result
        return out
    return result.astype(a.dtype)


@contextmanager
def int64_gemm():
    """Swap the int8 backend's GEMM hook for the exact int64 oracle."""
    original = kernels._int8_matmul
    kernels._int8_matmul = exact_int64_matmul
    try:
        yield
    finally:
        kernels._int8_matmul = original


def int8_oracle_output(model, x: np.ndarray, residency: bool = True) -> np.ndarray:
    """Compile and run ``model``'s int8 plan under the int64-GEMM oracle.

    ``residency`` must match the plan under test: the transform-domain
    residency pass switches eligible pairs to per-tap scale grids, which
    changes the (frozen, exact) quantization grids themselves — so the
    oracle has to integerise the same plan it is checking.
    """
    with int64_gemm():
        return compile_model(model, backend="int8", residency=residency).run(x)


def winograd_stem_flip_report(plan, x: np.ndarray) -> Optional[dict]:
    """Audit the transformed-input quantization codes of a Winograd stem.

    Applies when the plan's first step is a native-int8
    ``winograd_conv2d`` whose only input is the plan input register and
    whose input/transform quantization stages are frozen; returns
    ``None`` when the plan has no such step (the caller then relies on
    the model-level int64-oracle identity alone).

    The returned report carries ``flips`` (count of code decisions that
    differ between the float32 reference composition and the exact
    integer composition), ``checked`` (total decisions), and
    ``unjustified`` (flips whose exact grid argument is *not* within
    float32 rounding of a half-integer boundary — must be zero).
    """
    from repro.engine.kernels import _strided_patches, fake_quant

    steps = plan.steps
    if not steps:
        return None
    step = steps[0]
    if (
        step.op != "winograd_conv2d"
        or step.domain != "int8"
        or tuple(step.inputs) != (plan.input_reg,)
    ):
        return None
    attrs = step.attrs
    i8 = attrs.get("i8") or {}
    if "resident_out" in attrs or "resident_src" in attrs or i8.get("per_tap"):
        # Resident stems requantize on per-tap scale grids (and a
        # resident consumer never materialises its spatial input), so
        # the scalar-multiplier recomputation below does not apply; the
        # model-level int64-oracle identity covers these plans.
        return None
    q_in, q_v = attrs.get("q_input"), attrs.get("q_input_t")
    if not q_in or not q_v or "scale" not in q_in or "scale" not in q_v:
        return None
    if "btk" not in i8 or "eb" not in i8:
        return None
    n, c, h, w = x.shape
    if h != w:
        return None
    m, r, t, pad = attrs["m"], attrs["r"], attrs["t"], attrs["pad"]
    out_h = h + 2 * pad - r + 1
    th = -(-out_h // m)
    need = th * m + r - 1
    tt, p = t * t, n * th * th

    # float32 reference composition of the transformed-input codes
    xq = fake_quant(x.copy(), dict(q_in))
    xp = np.pad(xq, ((0, 0), (0, 0), (pad, need - h - pad), (pad, need - h - pad)))
    tiles = np.ascontiguousarray(_strided_patches(xp, t, t, m, m))
    v_ref = np.matmul(np.matmul(attrs["BT"], tiles), attrs["BT"].transpose())
    ref_codes = np.clip(
        np.rint(v_ref / np.float32(q_v["scale"])), -q_v["qmax"], q_v["qmax"]
    )
    ref_codes = np.transpose(ref_codes, (4, 5, 1, 0, 2, 3)).reshape(tt, c * p)

    # exact integer composition of the same codes
    codes = np.clip(np.rint(x / q_in["scale"]), -q_in["qmax"], q_in["qmax"])
    xpc = np.pad(codes, ((0, 0), (0, 0), (pad, need - h - pad), (pad, need - h - pad)))
    tmat = np.ascontiguousarray(
        np.transpose(_strided_patches(xpc, t, t, m, m), (4, 5, 1, 0, 2, 3))
    ).reshape(tt, c * p)
    v_int = np.matmul(i8["btk"].astype(np.float64), tmat.astype(np.float64))
    exact_args = v_int * (float(q_in["scale"]) / 4.0 ** i8["eb"]) / float(q_v["scale"])
    int_codes = np.clip(np.rint(exact_args), -q_v["qmax"], q_v["qmax"])

    flipped = int_codes != ref_codes
    unjustified = 0
    if flipped.any():
        # The float32-composed reference argument wanders ~1e-4·|arg|
        # from the exact one, so "at the boundary" is relative to that;
        # a wrong multiplier would flip at uniformly random fractions.
        distance_to_boundary = np.abs(
            np.abs(exact_args[flipped] - np.floor(exact_args[flipped])) - 0.5
        )
        limit = np.maximum(1e-3, 1e-3 * np.abs(exact_args[flipped]))
        unjustified = int(np.sum(distance_to_boundary >= limit))
    return {
        "flips": int(flipped.sum()),
        "checked": int(flipped.size),
        "unjustified": unjustified,
    }
