"""Randomized differential-testing support (ISSUE 5).

The engine now exposes a product of execution modes — ``reference`` /
``fast`` / ``turbo`` / ``int8`` backends × thread counts × batch
chunking × arena planning — and hand-written parity tests cannot cover
that space.  This package generates *seeded random models* spanning the
paper's search dimensions (conv algorithm F(m, r) vs im2row, widths,
precisions, residual/concat topologies) and checks every mode against
its documented contract:

* :mod:`repro.testing.modelgen` — the seeded model generator;
* :mod:`repro.testing.oracle` — the exact int64-GEMM oracle (shared
  with the PR 3 int8-backend tests) and the bin-boundary justification
  check for quantization-grid flips;
* :mod:`repro.testing.diffcheck` — one entry point,
  :func:`~repro.testing.diffcheck.check_model`, that runs a generated
  model through all backend × threads × chunking combinations and
  asserts each equivalence, with the seed in every failure message.

Used by ``tests/engine/test_differential_fuzz.py`` (fixed 25-case
corpus in tier-1, a larger corpus under ``-m slow``) and runnable
standalone: ``python -m repro.testing.diffcheck --seeds 0:25``.
"""

from repro.testing.diffcheck import check_model
from repro.testing.modelgen import GeneratedModel, generate_model
from repro.testing.oracle import exact_int64_matmul, int8_oracle_output

__all__ = [
    "GeneratedModel",
    "check_model",
    "exact_int64_matmul",
    "generate_model",
    "int8_oracle_output",
]
