"""Seeded random small-model generator for differential testing.

Each seed deterministically produces one compilable eval-mode model
spanning the paper's search dimensions:

* **conv algorithm** — im2row vs Winograd F(m ∈ {2, 4, 6}, r ∈ {3, 5}),
  mixed freely across layers like a wiNAS-chosen network;
* **precision** — fp32 / int8 / int10 fake-quant configs;
* **topology** — plain conv chains, residual ``BasicBlock``s (add),
  ``Fire`` modules (concat), grouped convolutions, pooling, eval-mode
  BatchNorm with randomized running statistics, and both
  global-average-pool and flatten heads.

The generator only emits modules the compile pass can lower, so every
generated model exercises the full product of engine modes (backends ×
threads × chunking × arena planning).  Randomized BN statistics and
weights come from the same seed, so a failing case is reproducible from
its seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.models.common import ConvSpec, LayerPlan
from repro.models.resnet import BasicBlock
from repro.models.squeezenet import Fire
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.qlayers import QuantLinear
from repro.quant.qconfig import from_name

#: The per-layer algorithm choices (Fig. 3's search space + im2row).
ALGORITHMS = ("im2row", "F2", "F4", "F6")

#: Precisions the corpus samples (paper's quantization levels).
PRECISIONS = ("fp32", "int8", "int10")


@dataclass
class GeneratedModel:
    """One corpus entry: the model plus everything a check needs."""

    seed: int
    description: str
    model: Module
    input_shape: Tuple[int, int, int, int]  # (N, C, H, W)
    precision: str
    quantized: bool
    has_winograd: bool
    #: The stem is a quantized Winograd conv fed directly by the plan
    #: input — the configuration the stage-level bin-boundary check
    #: (:func:`repro.testing.oracle.winograd_stem_flip_report`) can audit.
    winograd_quant_stem: bool

    def sample_input(self, batch: int = 0) -> np.ndarray:
        """The seeded test batch (distinct stream from the weights)."""
        n, c, h, w = self.input_shape
        rng = np.random.default_rng(10_000 + self.seed)
        return rng.standard_normal((batch or n, c, h, w)).astype(np.float32)

    def calibration_input(self) -> np.ndarray:
        """The seeded calibration batch (warms cold quantizer observers)."""
        _, c, h, w = self.input_shape
        rng = np.random.default_rng(20_000 + self.seed)
        return rng.standard_normal((4, c, h, w)).astype(np.float32)


def _randomize_bn(bn: BatchNorm2d, rng: np.random.Generator) -> BatchNorm2d:
    """Give eval-mode BN non-trivial statistics (a fresh BN is identity)."""
    c = bn.num_features
    bn.running_mean.data[:] = rng.normal(0.0, 0.3, c).astype(np.float32)
    bn.running_var.data[:] = rng.uniform(0.5, 1.5, c).astype(np.float32)
    bn.weight.data[:] = rng.uniform(0.8, 1.2, c).astype(np.float32)
    bn.bias.data[:] = rng.normal(0.0, 0.1, c).astype(np.float32)
    return bn


def _spec(rng: np.random.Generator, qcfg, algorithm=None) -> ConvSpec:
    algorithm = algorithm or str(rng.choice(ALGORITHMS))
    return ConvSpec(algorithm, qcfg)


def generate_model(seed: int) -> GeneratedModel:
    """Deterministically build one random model for ``seed``."""
    rng = np.random.default_rng(seed)
    # Cycle precisions by seed (instead of drawing) so every contiguous
    # corpus slice covers all of them evenly; consume one draw anyway to
    # decorrelate the remaining choices from the cycle.
    rng.integers(len(PRECISIONS))
    precision = PRECISIONS[seed % len(PRECISIONS)]
    qcfg = from_name(precision)
    quantized = precision != "fp32"

    in_channels = int(rng.choice((1, 3, 4)))
    input_size = int(rng.choice((8, 12, 16)))
    size = input_size
    channels = int(rng.choice((4, 6, 8)))
    parts: List[Module] = []
    notes: List[str] = [precision]
    has_winograd = False
    layer_index = 0

    # Every fifth seed gets a *chained* stride-1 Winograd stem — two
    # back-to-back Winograd convs on a non-square input — the exact
    # shape the compiler's transform-domain residency pass fuses.  The
    # chained flag derives from the seed (not an rng draw) so the other
    # seeds' models are untouched; pad of the second conv alternates so
    # the corpus covers both the aligned (pad=0) and padded tap paths.
    chained = seed % 5 == 3

    # -- stem: one conv straight off the input ------------------------------
    # Half the corpus gets a Winograd stem (quantized where the precision
    # says so) because that is the configuration the stage-level
    # bin-boundary audit can reach (its input register is the plan input).
    if rng.random() < 0.55:
        stem_alg = str(rng.choice(("F2", "F4", "F6")))
    else:
        stem_alg = "im2row"
    stem_r = 5 if (stem_alg != "im2row" and rng.random() < 0.3) else 3
    if chained:
        stem_alg = "F4" if (seed // 5) % 2 == 0 else "F2"
        stem_r = 3
    stem = _spec(rng, qcfg, stem_alg).build(
        in_channels, channels, kernel_size=stem_r, rng=rng
    )
    winograd_quant_stem = quantized and stem_alg != "im2row"
    has_winograd |= stem_alg != "im2row"
    parts.append(stem)
    parts.append(ReLU())
    notes.append(f"stem:{stem_alg}r{stem_r}x{in_channels}->{channels}")
    layer_index += 1

    if chained:
        pad2 = (seed // 5) % 2
        alg2 = "F2" if stem_alg == "F4" else "F4"
        parts.append(
            _spec(rng, qcfg, alg2).build(
                channels, channels, kernel_size=3, padding=pad2, rng=rng
            )
        )
        parts.append(ReLU())
        notes.append(f"chain:{alg2}r3p{pad2}")
        layer_index += 1
        size += pad2 * 2 - 2  # second conv shrinks H/W unless padded

    # -- body: 2..4 randomly chosen feature stages --------------------------
    for _ in range(int(rng.integers(2, 5))):
        kind = str(
            rng.choice(
                ("conv", "conv", "block", "fire", "pool", "bnrelu"),
            )
        )
        if kind == "pool" and size < 8:
            kind = "bnrelu"
        if kind == "conv":
            out_channels = int(rng.choice((4, 6, 8)))
            spec = _spec(rng, qcfg)
            kernel = 5 if (spec.is_winograd and rng.random() < 0.25) else 3
            groups = 2 if (rng.random() < 0.25 and channels % 2 == 0
                           and out_channels % 2 == 0) else 1
            parts.append(
                spec.build(
                    channels, out_channels, kernel_size=kernel,
                    groups=groups, rng=rng,
                )
            )
            if rng.random() < 0.5:
                parts.append(_randomize_bn(BatchNorm2d(out_channels), rng))
            parts.append(ReLU())
            has_winograd |= spec.is_winograd
            notes.append(
                f"conv:{spec.algorithm}r{kernel}g{groups}x{channels}->{out_channels}"
            )
            channels = out_channels
        elif kind == "block":
            out_channels = int(rng.choice((4, 8)))
            downsample = bool(rng.random() < 0.4) and size >= 8
            spec = _spec(rng, qcfg)
            block = BasicBlock(
                channels,
                out_channels,
                downsample=downsample,
                plan=LayerPlan(spec),
                layer_index=layer_index,
                shortcut_qconfig=qcfg,
                rng=rng,
            )
            _randomize_bn(block.bn1, rng)
            _randomize_bn(block.bn2, rng)
            if getattr(block, "shortcut_bn", None) is not None:
                _randomize_bn(block.shortcut_bn, rng)
            parts.append(block)
            has_winograd |= spec.is_winograd
            notes.append(
                f"block:{spec.algorithm}x{channels}->{out_channels}"
                f"{'/2' if downsample else ''}"
            )
            layer_index += 2
            channels = out_channels
            if downsample:
                size = (size - 2) // 2 + 1
        elif kind == "fire":
            squeeze = int(rng.choice((2, 4)))
            expand = int(rng.choice((3, 4)))
            spec = _spec(rng, qcfg)
            fire = Fire(
                channels, squeeze, expand,
                plan=LayerPlan(spec), layer_index=layer_index,
                qconfig=qcfg, rng=rng,
            )
            _randomize_bn(fire.bn, rng)
            parts.append(fire)
            has_winograd |= spec.is_winograd
            notes.append(f"fire:{spec.algorithm}x{channels}->{2 * expand}")
            layer_index += 1
            channels = 2 * expand
        elif kind == "pool":
            if rng.random() < 0.5:
                parts.append(MaxPool2d(2, 2))
                notes.append("maxpool")
            else:
                parts.append(AvgPool2d(2, 2))
                notes.append("avgpool")
            size = (size - 2) // 2 + 1
        else:  # bnrelu
            parts.append(_randomize_bn(BatchNorm2d(channels), rng))
            parts.append(ReLU())
            notes.append("bnrelu")

    # -- head ----------------------------------------------------------------
    classes = int(rng.choice((5, 10)))
    # Chained-stem models run on a non-square input (W = H + 4), so the
    # flatten head's feature count (computed from the square ``size``)
    # would be wrong — they always take the global-average-pool head.
    if rng.random() < 0.7 or channels * size * size > 512 or chained:
        parts.append(GlobalAvgPool2d())
        in_features = channels
        notes.append("gap")
    else:
        parts.append(Flatten())
        in_features = channels * size * size
        notes.append("flatten")
    head = Linear(in_features, classes, rng=rng)
    if quantized and rng.random() < 0.6:
        head = QuantLinear(head, qcfg)
        notes.append(f"qlinear->{classes}")
    else:
        notes.append(f"linear->{classes}")
    parts.append(head)

    model = Sequential(*parts)
    model.eval()
    if chained:
        notes.append("nonsquare")
    return GeneratedModel(
        seed=seed,
        description="|".join(notes),
        model=model,
        input_shape=(2, in_channels, input_size, input_size + 4 if chained else input_size),
        precision=precision,
        quantized=quantized,
        has_winograd=has_winograd,
        winograd_quant_stem=winograd_quant_stem,
    )
