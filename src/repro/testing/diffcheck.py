"""One-call differential check of a generated model across engine modes.

:func:`check_model` compiles one :func:`~repro.testing.modelgen.generate_model`
output through every backend and asserts each mode's documented contract
(the same contracts the hand-written parity suites pin, applied to a
random model):

====================================  =====================================
mode                                  contract
====================================  =====================================
``reference``                         bitwise equal to the eager forward
``reference`` chunked / threaded      bitwise equal to serial unchunked
                                      (by construction: the oracle
                                      backend never splits GEMM steps)
``fast`` (+ chunked × threaded)       fp32: within 1e-3 of the output
                                      scale (Winograd reassociation);
                                      quantized: within 1e-4 of scale OR
                                      a bounded (5%-of-scale) boundary
                                      avalanche with argmax preserved
``turbo``                             == ``fast`` bitwise on fp32 models;
                                      quantized: close (median bound) OR
                                      classification decisions preserved
``int8`` (quantized models)           **bit-identical** to the int64-GEMM
                                      oracle; threaded/chunked runs
                                      bit-identical when the plan is
                                      fully native (tolerance when float
                                      fallback GEMM steps remain);
                                      Winograd-stem grid flips vs
                                      reference must be bin-boundary
                                      justified
====================================  =====================================

Every assertion message carries the seed and the generated model's
description, so any corpus failure reproduces with
``generate_model(seed)`` alone.

Standalone usage (the CI quick lane runs the pytest corpus instead)::

    PYTHONPATH=src python -m repro.testing.diffcheck --seeds 0:25
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.engine import compile_model
from repro.engine.artifact import load_plan, save_plan
from repro.testing.modelgen import GeneratedModel, generate_model
from repro.testing.oracle import int8_oracle_output, winograd_stem_flip_report

#: chunk_bytes small enough to chunk essentially every step of the tiny
#: corpus models (mirrors test_chunked_execution's "absurdly small").
TINY_CHUNK = 1 << 10


def _msg(gm: GeneratedModel, what: str) -> str:
    return f"seed={gm.seed} [{gm.description}]: {what}"


def _eager_output(gm: GeneratedModel, x: np.ndarray) -> np.ndarray:
    """Calibrate (freezes cold observers) then run the frozen forward."""
    gm.model.eval()
    with no_grad():
        gm.model(Tensor(gm.calibration_input()))
        return gm.model(Tensor(x)).data


def _assert_fast_tolerance(gm, got, expected, what):
    scale = max(float(np.abs(expected).max()), 1e-3)
    if gm.quantized:
        # Fake-quant snapping absorbs reassociation noise almost always —
        # but on random deep nets a value can legitimately sit close
        # enough to a bin boundary that the fast path's fused GEMMs snap
        # it the other way, and one early flip avalanches (the same
        # trade the turbo/int8 docs spell out).  Contract: numerically
        # tight, OR a bounded avalanche with decisions preserved.
        tight = bool(np.all(np.abs(got - expected) <= 1e-4 * scale + 1e-6))
        if not tight:
            drift = float(np.abs(got - expected).max())
            same = bool(np.all(
                np.asarray(got).argmax(axis=-1)
                == np.asarray(expected).argmax(axis=-1)
            ))
            assert drift <= 0.05 * scale and same, _msg(
                gm, f"{what} (drift {drift:.3g} vs scale {scale:.3g}, "
                    f"decisions preserved: {same})"
            )
    else:
        # Float path: Winograd transform reassociation (large F(6, r) /
        # r=5 tiles especially) bounds the drift relative to the output
        # scale, not absolutely.
        np.testing.assert_allclose(
            got, expected, rtol=0, atol=1e-3 * scale, err_msg=_msg(gm, what)
        )


def _roundtrip_plan(plan, x):
    """Save → mmap-load → run; returns the loaded plan's output.

    The artifact leg of the corpus: a plan that survives serialization
    (no opaque ``eager_module`` steps — the corpus never generates them)
    must produce **bitwise identical** output when executed from its
    mmap-loaded artifact, on every backend (docs/artifact-format.md
    'Compatibility and rejection policy').
    """
    fd, path = tempfile.mkstemp(suffix=".rpln")
    os.close(fd)
    try:
        save_plan(plan, path, input_shape=x.shape)
        return load_plan(path).run(x)
    finally:
        os.unlink(path)


def check_model(seed: int, threads: int = 2) -> dict:
    """Generate the model for ``seed`` and assert every mode contract.

    Returns a small report dict (backends run, native-int8 step counts,
    Winograd-stem flip audit results) so corpus-level tests can assert
    the corpus actually exercised each dimension.
    """
    gm = generate_model(seed)
    x = gm.sample_input()
    expected = _eager_output(gm, x)
    report = {
        "seed": seed,
        "description": gm.description,
        "precision": gm.precision,
        "has_winograd": gm.has_winograd,
        "stem_audit": None,
    }

    # -- reference: the bit-exactness oracle --------------------------------
    ref_plan = compile_model(gm.model, backend="reference")
    reference = ref_plan.run(x)
    np.testing.assert_array_equal(
        reference, expected, err_msg=_msg(gm, "reference must match eager bitwise")
    )
    ref_plan.chunk_bytes = TINY_CHUNK
    np.testing.assert_array_equal(
        ref_plan.run(x), reference,
        err_msg=_msg(gm, "reference chunked run diverged (must be bitwise)"),
    )
    np.testing.assert_array_equal(
        ref_plan.run(x, threads=threads), reference,
        err_msg=_msg(gm, "reference threaded run diverged (must be bitwise)"),
    )
    np.testing.assert_array_equal(
        _roundtrip_plan(ref_plan, x), reference,
        err_msg=_msg(gm, "artifact-loaded reference plan diverged "
                         "(save/mmap-load must be bitwise)"),
    )

    # -- fast: float-tolerance contract, stable under chunk × threads --------
    fast_plan = compile_model(gm.model, backend="fast")
    fast = fast_plan.run(x)
    _assert_fast_tolerance(gm, fast, expected, "fast backend out of tolerance")
    # Transform-domain residency on the float path is pure copy elision:
    # identical op order, identical layouts — so on *or* off must be
    # bitwise identical (on quantized models the pass declines and the
    # two plans are simply the same).
    report["residency_edges"] = len(fast_plan.residency_report())
    np.testing.assert_array_equal(
        compile_model(gm.model, backend="fast", residency=False).run(x), fast,
        err_msg=_msg(gm, "fast residency-on vs residency-off must be bitwise"),
    )
    fast_plan.chunk_bytes = TINY_CHUNK
    _assert_fast_tolerance(
        gm, fast_plan.run(x, threads=threads), expected,
        "fast chunked+threaded run out of tolerance",
    )

    # -- turbo: == fast on fp32; grid-consistent on quantized ----------------
    turbo = compile_model(gm.model, backend="turbo").run(x)
    if gm.quantized:
        # Turbo's documented trade: Kronecker-reassociated quantized
        # transforms may flip bin decisions at boundaries, and deep nets
        # chaotically amplify a single early flip (see the int8/turbo
        # backend docs) — so the model-level contract is "numerically
        # close OR classification decisions preserved", never value-wise.
        scale = float(np.abs(fast).max()) or 1.0
        assert turbo.shape == fast.shape, _msg(gm, "turbo shape mismatch")
        assert np.all(np.isfinite(turbo)), _msg(gm, "turbo produced non-finite")
        close = np.median(np.abs(turbo - fast)) <= 0.05 * scale
        same_decisions = bool(np.all(turbo.argmax(axis=-1) == fast.argmax(axis=-1)))
        assert close or same_decisions, _msg(
            gm, "turbo both drifted beyond a few final-grid steps from fast "
                "AND flipped a classification decision"
        )
    else:
        np.testing.assert_array_equal(
            turbo, fast, err_msg=_msg(gm, "turbo must equal fast on fp32 models")
        )

    # -- int8: exactness oracle + boundary-justified flips -------------------
    if gm.quantized:
        int8_plan = compile_model(gm.model, backend="int8")
        native = int8_plan.run(x)
        oracle = int8_oracle_output(gm.model, x)
        np.testing.assert_array_equal(
            native, oracle,
            err_msg=_msg(gm, "int8 backend not bit-identical to int64 oracle "
                             "(float GEMM not exact — accumulator bound bug?)"),
        )
        # Integer GEMMs are exact at any blocking, so a fully native plan
        # is bit-stable under threads and chunking; float fallback GEMM
        # steps (e.g. an unquantized head) reintroduce last-ulp blocking
        # sensitivity, so those plans get the fast-backend tolerance.
        float_gemms = [
            s for s in int8_plan.steps
            if s.op in ("conv2d", "winograd_conv2d", "linear")
            and s.domain != "int8"
        ]
        int8_plan.chunk_bytes = TINY_CHUNK
        reran = int8_plan.run(x, threads=threads)
        if not float_gemms:
            np.testing.assert_array_equal(
                reran, native,
                err_msg=_msg(gm, "fully-native int8 plan not bit-stable "
                                 "under chunked+threaded execution"),
            )
        else:
            _assert_fast_tolerance(
                gm, reran, native,
                "int8 plan with float fallback steps out of tolerance "
                "under chunked+threaded execution",
            )
        np.testing.assert_array_equal(
            _roundtrip_plan(int8_plan, x), native,
            err_msg=_msg(gm, "artifact-loaded int8 plan diverged "
                             "(save/mmap-load must be bitwise)"),
        )
        report["native_int8_steps"] = int8_plan.int8_report()["native_int8_steps"]
        report["float_fallback_gemms"] = len(float_gemms)
        # Residency on int8 switches eligible pairs to per-tap grids, so
        # on-vs-off outputs legitimately differ; the contract is that
        # *each* configuration is bit-identical to the oracle compiled
        # the same way (the off leg is only non-redundant when the pass
        # actually wired an edge).
        int8_edges = int8_plan.residency_report()
        report["int8_residency_edges"] = len(int8_edges)
        if int8_edges:
            off_plan = compile_model(gm.model, backend="int8", residency=False)
            np.testing.assert_array_equal(
                off_plan.run(x), int8_oracle_output(gm.model, x, residency=False),
                err_msg=_msg(gm, "residency-off int8 plan not bit-identical "
                                 "to its int64 oracle"),
            )
        audit = winograd_stem_flip_report(int8_plan, x)
        if audit is not None:
            assert audit["unjustified"] == 0, _msg(
                gm,
                f"{audit['unjustified']} of {audit['flips']} quantization-bin "
                "flips are NOT at a bin boundary (wrong multiplier/scale?)",
            )
            # Flips must also stay a minority of the stage: systematic
            # errors flip *unjustified* (hard assert above); this bound
            # only smells out a broken scale that happens to land every
            # wrong decision near a boundary.  Small-channel low-bit
            # stems legitimately reach ~10–15% ties (integer transform
            # codes × dyadic scale ratios produce exact half-integers).
            assert audit["flips"] <= 0.25 * audit["checked"], _msg(
                gm, "too many grid flips at the Winograd stem"
            )
            report["stem_audit"] = audit
    return report


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - CLI util
    import argparse

    parser = argparse.ArgumentParser(description="run differential corpus checks")
    parser.add_argument("--seeds", default="0:25", help="range lo:hi or one seed")
    parser.add_argument("--threads", type=int, default=2)
    args = parser.parse_args(argv)
    lo, _, hi = args.seeds.partition(":")
    seeds = range(int(lo), int(hi)) if hi else [int(lo)]
    for seed in seeds:
        report = check_model(seed, threads=args.threads)
        audited = report["stem_audit"] is not None
        print(
            f"seed {seed:4d} ok  {report['precision']:5s} "
            f"{'stem-audited ' if audited else ''}{report['description']}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
