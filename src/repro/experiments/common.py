"""Shared experiment plumbing: scales, builders, reporting."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.loader import DataLoader
from repro.data.synthetic import Dataset, make_cifar10_like, make_cifar100_like, make_mnist_like
from repro.models.common import ConvSpec, LayerPlan
from repro.nn.module import Module
from repro.quant.qconfig import QConfig, from_name
from repro.training.trainer import TrainConfig, Trainer, evaluate


@dataclass(frozen=True)
class ScaleConfig:
    """Sizing of an experiment run.

    ``paper`` documents the full protocol; it is not runnable on the NumPy
    substrate in reasonable time and exists so the scaling relationship is
    explicit and auditable.
    """

    name: str
    train_size: int
    test_size: int
    image_size: int
    width_multiplier: float
    epochs: int
    batch_size: int
    lenet_epochs: int
    search_epochs: int
    num_classes_c100: int  # CIFAR-100 stand-in class count

    def loaders(
        self,
        dataset: str = "cifar10",
        seed: int = 0,
        batch_size: Optional[int] = None,
    ) -> Tuple[DataLoader, DataLoader, Dataset, Dataset]:
        """(train_loader, test_loader, train_set, test_set) for a dataset name."""
        bs = batch_size or self.batch_size
        if dataset == "cifar10":
            train, test = make_cifar10_like(
                self.train_size, self.test_size, self.image_size, seed=seed
            )
        elif dataset == "cifar100":
            train, test = make_cifar100_like(
                self.train_size,
                self.test_size,
                self.image_size,
                seed=seed,
                num_classes=self.num_classes_c100,
            )
        elif dataset == "mnist":
            train, test = make_mnist_like(
                self.train_size, self.test_size, max(self.image_size, 20), seed=seed
            )
        else:
            raise ValueError(f"unknown dataset {dataset!r}")
        return (
            DataLoader(train, batch_size=bs, shuffle=True, seed=seed),
            DataLoader(test, batch_size=bs, shuffle=False, seed=seed),
            train,
            test,
        )


_SCALES: Dict[str, ScaleConfig] = {
    "smoke": ScaleConfig(
        name="smoke",
        train_size=400,
        test_size=160,
        image_size=16,
        width_multiplier=0.25,
        epochs=3,
        batch_size=40,
        lenet_epochs=8,
        search_epochs=1,
        num_classes_c100=20,
    ),
    "quick": ScaleConfig(
        name="quick",
        train_size=1500,
        test_size=400,
        image_size=24,
        width_multiplier=0.25,
        epochs=6,
        batch_size=50,
        lenet_epochs=8,
        search_epochs=3,
        num_classes_c100=50,
    ),
    "paper": ScaleConfig(
        name="paper",
        train_size=50000,
        test_size=10000,
        image_size=32,
        width_multiplier=1.0,
        epochs=120,
        batch_size=64,
        lenet_epochs=30,
        search_epochs=100,
        num_classes_c100=100,
    ),
}


def get_scale(scale: str = "smoke") -> ScaleConfig:
    try:
        return _SCALES[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; available: {sorted(_SCALES)}") from None


@dataclass
class ExperimentReport:
    """Measured rows + published reference for one table/figure."""

    experiment: str
    scale: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    paper_reference: Optional[object] = None
    notes: List[str] = field(default_factory=list)

    def add(self, **kwargs: object) -> None:
        self.rows.append(kwargs)

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.rows]

    def find(self, **match: object) -> Dict[str, object]:
        """First row whose items all match; KeyError if absent."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match} in {self.experiment}")

    def format(self) -> str:
        lines = [f"== {self.experiment} (scale={self.scale}) =="]
        if self.rows:
            lines.append(format_table(self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Fixed-width text table over the union of row keys."""
    if not rows:
        return "(empty)"
    keys: List[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [[fmt(row.get(k, "")) for k in keys] for row in rows]
    widths = [max(len(k), *(len(r[i]) for r in table)) for i, k in enumerate(keys)]
    header = "  ".join(k.ljust(w) for k, w in zip(keys, widths))
    sep = "  ".join("-" * w for w in widths)
    body = ["  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in table]
    return "\n".join([header, sep] + body)


def train_and_evaluate(
    model: Module,
    train_loader: DataLoader,
    test_loader: DataLoader,
    epochs: int,
    lr: float = 2e-3,
    verbose: bool = False,
    track_curve: bool = False,
) -> Tuple[float, List[float]]:
    """Train with the §5.1 recipe (Adam + cosine); return (test_acc, curve)."""
    config = TrainConfig(epochs=epochs, lr=lr, cosine=True, verbose=verbose)
    trainer = Trainer(
        model, train_loader, val_loader=test_loader if track_curve else None, config=config
    )
    trainer.fit()
    curve = [r.val_accuracy for r in trainer.history if r.val_accuracy is not None]
    final = evaluate(model, test_loader)
    return final, curve
