"""Figure 6 — adapting a pre-trained standard model to Winograd-aware form.

The paper shows an INT8 ResNet-18 F4 reaches the end-to-end Winograd-aware
accuracy in ~20 retraining epochs when initialised from a standard-conv
model (2.8× cheaper than training from scratch), and that this only works
well when the transforms are learnable (flex).  We reproduce the protocol:
train a standard FP32 model, transfer its weights into F4-flex / F4-static
INT8 twins, fine-tune briefly, and compare against from-scratch training
with the same budget.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, get_scale, train_and_evaluate
from repro.models.common import ConvSpec, uniform_plan
from repro.models.resnet import NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS, resnet18
from repro.quant.qconfig import int8
from repro.training.adaptation import transfer_weights


def _f4_model(width: float, num_classes: int, flex: bool):
    spec = ConvSpec("F4", int8(), flex=flex)
    plan = uniform_plan(spec, NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS)
    return resnet18(width_multiplier=width, plan=plan, num_classes=num_classes)


def run(scale: str = "smoke", seed: int = 0, verbose: bool = False) -> ExperimentReport:
    cfg = get_scale(scale)
    train_loader, test_loader, train_set, _ = cfg.loaders("cifar10", seed=seed)
    n_classes = train_set.num_classes
    report = ExperimentReport("figure6_adaptation", scale)
    adapt_epochs = max(1, cfg.epochs // 2)

    # Source: standard convolutions, FP32, full budget.
    source = resnet18(
        width_multiplier=cfg.width_multiplier, spec=ConvSpec("im2row"),
        num_classes=n_classes,
    )
    src_acc, _ = train_and_evaluate(
        source, train_loader, test_loader, cfg.epochs, verbose=verbose
    )
    report.notes.append(f"standard-conv FP32 source accuracy: {src_acc:.3f}")

    # From scratch, same *short* budget as adaptation (the comparison the
    # figure makes: adapted models recover much faster).
    for flex in (True, False):
        name = "F4-flex" if flex else "F4"
        scratch = _f4_model(cfg.width_multiplier, n_classes, flex)
        acc, curve = train_and_evaluate(
            scratch, train_loader, test_loader, adapt_epochs,
            verbose=verbose, track_curve=True,
        )
        report.add(config=f"{name} (scratch)", epochs=adapt_epochs, accuracy=acc,
                   curve=[round(a, 4) for a in curve])

        adapted = _f4_model(cfg.width_multiplier, n_classes, flex)
        transfer_weights(source, adapted)
        acc, curve = train_and_evaluate(
            adapted, train_loader, test_loader, adapt_epochs,
            verbose=verbose, track_curve=True,
        )
        report.add(config=f"{name} (adapted)", epochs=adapt_epochs, accuracy=acc,
                   curve=[round(a, 4) for a in curve])
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run(verbose=True).format())
