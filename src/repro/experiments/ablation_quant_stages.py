"""Ablation — quantization diversity across pipeline stages (paper §3.2, §7).

The Winograd-aware pipeline has six quantization points; the paper's
default quantizes all of them to the input/weight bit-width but §7 notes
"enabling different bit-widths throughout Eq. 1 could help mitigate the
accuracy drop".  We implement that knob and measure, for an F4 layer at
INT8, how relaxing each single stage to 16-bit changes the output error —
identifying which stage's quantization hurts most (the Hadamard/summation
stage, whose products have the widest dynamic range).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.tensor import Tensor
from repro.experiments.common import ExperimentReport
from repro.quant.qconfig import STAGES, QConfig
from repro.winograd.functional import direct_conv2d
from repro.winograd.layer import WinogradConv2d


def _layer_error(qconfig: QConfig, m: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    layer = WinogradConv2d(8, 8, 3, m=m, qconfig=qconfig, bias=False)
    x = rng.standard_normal((2, 8, 12, 12)).astype(np.float32)
    reference = direct_conv2d(
        x.astype(np.float64), layer.weight.data.astype(np.float64), padding=1
    )
    layer.train()  # observers learn ranges on this batch
    y = layer(Tensor(x)).data
    scale = np.abs(reference).mean() or 1.0
    return float(np.abs(y - reference).mean() / scale)


def run(scale: str = "smoke", seed: int = 0, m: int = 4, base_bits: int = 8,
        relaxed_bits: int = 16) -> ExperimentReport:
    report = ExperimentReport("ablation_quant_stages", scale)
    base = QConfig(bits=base_bits)
    base_err = _layer_error(base, m, seed)
    report.add(stages=f"all INT{base_bits}", error=base_err, delta_vs_base=0.0)

    for stage in STAGES:
        qc = base.with_stage(stage, relaxed_bits)
        err = _layer_error(qc, m, seed)
        report.add(
            stages=f"{stage}→INT{relaxed_bits}",
            error=err,
            delta_vs_base=err - base_err,
        )

    fp_err = _layer_error(QConfig(bits=None), m, seed)
    report.add(stages="fp32 (no quantization)", error=fp_err, delta_vs_base=fp_err - base_err)
    report.notes.append(
        "negative delta = relaxing that stage helps; the paper's §7 "
        "hypothesis is that intermediate stages (Hadamard, transformed "
        "input) dominate the INT8 error for large tiles."
    )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
