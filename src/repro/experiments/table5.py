"""Table 5 — ResNeXt-20 (8×16): im2row vs Winograd-aware, static vs flex."""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, get_scale
from repro.experiments.table45 import run_architecture
from repro.models.resnext import ResNeXt20
from repro.paperdata.tables import TABLE5_RESNEXT


def run(scale: str = "smoke", seed: int = 0, dataset: str = "cifar10",
        verbose: bool = False) -> ExperimentReport:
    cfg = get_scale(scale)

    def build(plan, num_classes):
        return ResNeXt20(
            num_classes=num_classes, width_multiplier=cfg.width_multiplier, plan=plan
        )

    return run_architecture(
        "table5_resnext",
        build,
        TABLE5_RESNEXT,
        scale=scale,
        seed=seed,
        dataset=dataset,
        verbose=verbose,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(verbose=True).format())
