"""Figure 5 — INT8 LeNet (5×5 filters) on MNIST: static vs flex transforms.

The 5×5-filter case needs F(m×m, 5×5) tiles of (m+4)² — up to 10×10 for
F6 — which demands many Cook–Toom points and is where static transforms
lose the most (the paper reports static F4 at 73% and F6 at 51% while flex
variants stay near the im2row ceiling; in FP32 every config reaches
99.25%).  We train each configuration and record validation curves.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.common import ExperimentReport, get_scale, train_and_evaluate
from repro.models.common import ConvSpec, LayerPlan
from repro.models.lenet import LeNet
from repro.paperdata.tables import FIGURE5_LENET
from repro.quant.qconfig import QConfig, int8

CONFIGS: Tuple[Tuple[str, str, bool], ...] = (
    ("im2row", "im2row", False),
    ("F2", "F2", False),
    ("F2-flex", "F2", True),
    ("F4", "F4", False),
    ("F4-flex", "F4", True),
    ("F6", "F6", False),
    ("F6-flex", "F6", True),
)


def run(
    scale: str = "smoke",
    seed: int = 0,
    configs: Optional[Sequence[str]] = None,
    bits: int = 8,
    verbose: bool = False,
) -> ExperimentReport:
    cfg = get_scale(scale)
    train_loader, test_loader, train_set, _ = cfg.loaders("mnist", seed=seed)
    image_size = train_set.images.shape[-1]
    selected = CONFIGS if configs is None else tuple(c for c in CONFIGS if c[0] in configs)
    report = ExperimentReport("figure5_lenet", scale, paper_reference=FIGURE5_LENET)
    qc = QConfig(bits=bits) if bits != 32 else None
    for name, algorithm, flex in selected:
        if algorithm == "im2row":
            spec = ConvSpec("im2row", qc or ConvSpec("im2row").qconfig)
        else:
            spec = ConvSpec(algorithm, qc or ConvSpec("im2row").qconfig, flex=flex)
        model = LeNet(
            num_classes=train_set.num_classes,
            plan=LayerPlan(spec),
            image_size=image_size,
        )
        acc, curve = train_and_evaluate(
            model,
            train_loader,
            test_loader,
            cfg.lenet_epochs,
            verbose=verbose,
            track_curve=True,
        )
        report.add(
            config=name,
            bits=bits,
            accuracy=acc,
            paper_accuracy=FIGURE5_LENET.get(name, float("nan")) / 100.0,
            curve=[round(a, 4) for a in curve],
        )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run(verbose=True).format())
