"""Figure 8 — per-layer latency breakdown, normalised to im2row.

The paper plots, for three representative ResNet-18 layers on both cores,
each algorithm's latency relative to im2row, splitting Winograd bars into
input-transform / GEMM / output-transform stages.  The shape to reproduce:
the 3→32 input layer never benefits from Winograd (transforms are 65–75%
of its cost), while the deep layers gain up to ~2–3× on the A73 and less
on the A53.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.common import ExperimentReport
from repro.hardware.calibration import get_calibrated_model
from repro.hardware.model import ConvShape

#: The three layers the paper plots: (label, inCh, outCh, out width).
LAYERS: Tuple[Tuple[str, int, int, int], ...] = (
    ("32x32 3->32", 3, 32, 32),
    ("16x16 128->128", 128, 128, 16),
    ("8x8 256->256", 256, 256, 8),
)

ALGORITHMS = ("im2row", "im2col", "F2", "F4", "F6")


def run(
    scale: str = "smoke",
    seed: int = 0,
    cores: Sequence[str] = ("A73", "A53"),
) -> ExperimentReport:
    cal = get_calibrated_model()
    report = ExperimentReport("figure8_layer_breakdown", scale)
    for core in cores:
        for label, cin, cout, w in LAYERS:
            shape = ConvShape(cin, cout, w)
            base = cal.conv_latency(shape, "im2row", core=core).total_ms
            for algo in ALGORITHMS:
                b = cal.conv_latency(shape, algo, core=core)
                report.add(
                    core=core,
                    layer=label,
                    algorithm=algo,
                    ratio=b.total_ms / base,
                    input_tr_ratio=b.input_transform_ms / base,
                    gemm_ratio=(b.gemm_ms + b.lowering_ms) / base,
                    output_tr_ratio=b.output_transform_ms / base,
                    transform_fraction=b.transform_fraction,
                )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
