"""Figure 7 — the dense latency grid, model vs published measurements.

No training involved: the calibrated hardware model prices every
(output width × channel config × algorithm) cell of the published A73 FP32
grid; the report carries per-cell predictions, per-column Spearman rank
correlations, and the winner-agreement count — the three things that
matter for wiNAS (the search consumes *orderings*, not absolute ms).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.experiments.common import ExperimentReport
from repro.hardware.calibration import get_calibrated_model
from repro.hardware.model import ConvShape
from repro.paperdata.figure7 import (
    FIGURE7_ALGORITHMS,
    FIGURE7_CHANNEL_CONFIGS,
    FIGURE7_OUTPUT_WIDTHS,
    figure7_grid,
)


def run(scale: str = "smoke", seed: int = 0, core: str = "A73") -> ExperimentReport:
    cal = get_calibrated_model()
    grid = figure7_grid()
    report = ExperimentReport("figure7_latency_grid", scale, paper_reference=grid)

    winners_agree = 0
    cells = 0
    all_pred, all_obs = [], []
    for cin, cout in FIGURE7_CHANNEL_CONFIGS:
        col_pred, col_obs = [], []
        for w in FIGURE7_OUTPUT_WIDTHS:
            pred = {
                algo: cal.conv_latency(ConvShape(cin, cout, w), algo, core=core).total_ms
                for algo in FIGURE7_ALGORITHMS
            }
            obs = {algo: grid[(w, cin, cout, algo)] for algo in FIGURE7_ALGORITHMS}
            cells += 1
            winners_agree += min(pred, key=pred.get) == min(obs, key=obs.get)
            for algo in FIGURE7_ALGORITHMS:
                col_pred.append(pred[algo])
                col_obs.append(obs[algo])
            report.add(
                out_width=w,
                channels=f"{cin}->{cout}",
                **{f"{a}_pred": pred[a] for a in FIGURE7_ALGORITHMS},
                **{f"{a}_paper": obs[a] for a in FIGURE7_ALGORITHMS},
                winner_pred=min(pred, key=pred.get),
                winner_paper=min(obs, key=obs.get),
            )
        rho = stats.spearmanr(col_pred, col_obs).statistic
        report.notes.append(f"spearman({cin}->{cout}) = {rho:.4f}")
        all_pred.extend(col_pred)
        all_obs.extend(col_obs)

    overall = stats.spearmanr(all_pred, all_obs).statistic
    med_err = float(
        np.median(np.abs(np.log(np.array(all_pred) / np.array(all_obs))))
    )
    report.notes.append(f"overall spearman = {overall:.4f}")
    report.notes.append(f"median |log error| = {med_err:.3f} (~{np.expm1(med_err):.0%})")
    report.notes.append(f"winner agreement = {winners_agree}/{cells}")
    return report


if __name__ == "__main__":  # pragma: no cover
    rep = run()
    for note in rep.notes:
        print(note)
