"""Table 4 — SqueezeNet: im2row vs Winograd-aware, static vs flex."""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, get_scale
from repro.experiments.table45 import run_architecture
from repro.models.squeezenet import SqueezeNet
from repro.paperdata.tables import TABLE4_SQUEEZENET


def run(scale: str = "smoke", seed: int = 0, dataset: str = "cifar10",
        verbose: bool = False) -> ExperimentReport:
    cfg = get_scale(scale)

    def build(plan, num_classes):
        return SqueezeNet(
            num_classes=num_classes, width_multiplier=cfg.width_multiplier, plan=plan
        )

    return run_architecture(
        "table4_squeezenet",
        build,
        TABLE4_SQUEEZENET,
        scale=scale,
        seed=seed,
        dataset=dataset,
        verbose=verbose,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(verbose=True).format())
