"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(scale=..., seed=...) -> ExperimentReport``.  The
``scale`` knob selects between a CI-sized run ("smoke"), a longer local run
("quick"), and the paper's full protocol ("paper" — documented, but sized
for a GPU cluster, not this NumPy substrate).  Reports print measured rows
next to the paper's published rows so shape agreement is auditable.
"""

import importlib

from repro.experiments.common import (
    ExperimentReport,
    ScaleConfig,
    get_scale,
    format_table,
)

_EXPERIMENT_MODULES = (
    "table1",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "ablation_points",
    "ablation_dense_transforms",
    "ablation_quant_stages",
)


def __getattr__(name: str):
    # Lazy loading keeps `import repro.experiments` cheap and lets each
    # experiment be run standalone (python -m repro.experiments.table1).
    if name in _EXPERIMENT_MODULES:
        return importlib.import_module(f"repro.experiments.{name}")
    raise AttributeError(f"module 'repro.experiments' has no attribute {name!r}")

__all__ = [
    "ExperimentReport",
    "ScaleConfig",
    "get_scale",
    "format_table",
    "table1",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "ablation_points",
    "ablation_dense_transforms",
    "ablation_quant_stages",
]
