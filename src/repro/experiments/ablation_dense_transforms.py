"""Ablation — latency overhead of learned (dense) transforms (paper §A.2).

Default Cook–Toom transforms contain structural zeros that sparse GEMM
kernels skip; learned transforms are dense.  The paper reports the worst-
case penalty for a WAF4 ResNet-18 on the A73 as +17% (FP32) and +20%
(INT8), larger on the A53.  We price the same network both ways with the
calibrated model, per core and precision.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentReport
from repro.hardware.calibration import get_calibrated_model
from repro.hardware.model import ConvShape, conv_latency
from repro.hardware.network import resnet18_layer_shapes
from repro.winograd.transforms import get_transform


def _network_latency(cal, core: str, dtype: str, dense: bool) -> float:
    """WAF4-plan ResNet-18 latency with sparse or dense transforms."""
    params = cal.params(core)
    shapes = resnet18_layer_shapes()
    block_idx = [i for i, (role, _) in enumerate(shapes) if role == "block"]
    tail = set(block_idx[-4:])
    total = 0.0
    for i, (role, shape) in enumerate(shapes):
        if role == "block":
            algo = "F2" if i in tail else "F4"
            total += conv_latency(
                params, shape, algo, dtype=dtype, dense_transforms=dense
            ).total_ms
        else:
            total += conv_latency(params, shape, "im2row", dtype=dtype).total_ms
    return total * cal.network_factor[core]


def run(scale: str = "smoke", seed: int = 0) -> ExperimentReport:
    cal = get_calibrated_model()
    report = ExperimentReport("ablation_dense_transforms", scale)

    for m in (2, 4, 6):
        tr = get_transform(m, 3)
        bt_s, g_s, at_s = tr.sparsity()
        report.notes.append(
            f"F{m} default sparsity: BT {bt_s:.0%}, G {g_s:.0%}, AT {at_s:.0%} "
            f"(paper quotes 50/33/25% for F2, 22/22/25% for F4)"
        )

    for core in ("A73", "A53"):
        for dtype in ("fp32", "int8"):
            sparse = _network_latency(cal, core, dtype, dense=False)
            dense = _network_latency(cal, core, dtype, dense=True)
            report.add(
                core=core,
                dtype=dtype,
                sparse_ms=sparse,
                dense_ms=dense,
                overhead_pct=100.0 * (dense / sparse - 1.0),
            )
    report.notes.append(
        "paper §A.2: +17% (A73, FP32) and +20% (A73, INT8) worst-case for "
        "WAF4; higher on the A53 where transforms are proportionally more "
        "expensive."
    )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
