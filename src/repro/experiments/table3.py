"""Table 3 — ResNet-18 accuracy & latency per convolution algorithm.

Accuracy comes from scaled-down training runs on the synthetic CIFAR-10
stand-in (CIFAR-100 variant optional); latency comes from the calibrated
hardware model evaluated at the paper's *full-size* network shapes, on both
cores and both precisions, with speedups against FP32 im2row — exactly the
table's layout.

Row semantics follow the paper:

* ``im2row``/``im2col`` — standard convolutions (QAT when INT8);
* ``WF2``/``WF4`` — plain Winograd *swap* after standard training (only
  meaningful in FP32, which is the only place the paper reports them);
* ``WAF2`` — Winograd-aware training with static (default) transforms;
* ``WAF4`` — Winograd-aware training with learned (flex) transforms,
  priced with dense transforms (the table's †);
* ``wiNAS-WA`` / ``wiNAS-WA-Q`` — searched per-layer plans (optional,
  ``include_nas=True``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.experiments.common import ExperimentReport, get_scale, train_and_evaluate
from repro.hardware.calibration import get_calibrated_model
from repro.models.common import ConvSpec, LayerPlan, uniform_plan
from repro.models.resnet import NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS, resnet18
from repro.paperdata.tables import TABLE3_ROWS
from repro.quant.qconfig import QConfig, fp32, int8
from repro.training.adaptation import transfer_weights
from repro.training.calibrate import calibrate
from repro.training.trainer import evaluate


def _build(spec: ConvSpec, width: float, num_classes: int):
    plan = uniform_plan(spec, NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS)
    return resnet18(width_multiplier=width, plan=plan, num_classes=num_classes)


def run(
    scale: str = "smoke",
    seed: int = 0,
    dataset: str = "cifar10",
    include_nas: bool = False,
    verbose: bool = False,
) -> ExperimentReport:
    cfg = get_scale(scale)
    train_loader, test_loader, train_set, _ = cfg.loaders(dataset, seed=seed)
    num_classes = train_set.num_classes
    cal = get_calibrated_model()
    report = ExperimentReport("table3_accuracy_latency", scale, paper_reference=TABLE3_ROWS)

    base_latency = {
        core: cal.resnet18_latency("im2row", "fp32", core) for core in ("A53", "A73")
    }

    def add_row(name: str, bits: int, accuracy: float, lat_plan: str, dtype: str) -> None:
        lat = {core: cal.resnet18_latency(lat_plan, dtype, core) for core in ("A53", "A73")}
        report.add(
            conv=name,
            bits=bits,
            accuracy=accuracy,
            a53_ms=lat["A53"],
            a73_ms=lat["A73"],
            a53_speedup=base_latency["A53"] / lat["A53"],
            a73_speedup=base_latency["A73"] / lat["A73"],
        )

    # ---- FP32 rows -------------------------------------------------------
    base = _build(ConvSpec("im2row"), cfg.width_multiplier, num_classes)
    acc_im2row, _ = train_and_evaluate(base, train_loader, test_loader, cfg.epochs, verbose=verbose)
    add_row("im2row", 32, acc_im2row, "im2row", "fp32")
    add_row("im2col", 32, acc_im2row, "im2col", "fp32")  # same math, same accuracy

    for name in ("WF2", "WF4"):
        swap_spec = ConvSpec("F2" if name == "WF2" else "F4")
        swapped = _build(swap_spec, cfg.width_multiplier, num_classes)
        transfer_weights(base, swapped)
        add_row(name, 32, evaluate(swapped, test_loader), name, "fp32")

    wa2 = _build(ConvSpec("F2", fp32(), flex=False), cfg.width_multiplier, num_classes)
    acc, _ = train_and_evaluate(wa2, train_loader, test_loader, cfg.epochs, verbose=verbose)
    add_row("WAF2", 32, acc, "WAF2", "fp32")

    wa4 = _build(ConvSpec("F4", fp32(), flex=True), cfg.width_multiplier, num_classes)
    acc, _ = train_and_evaluate(wa4, train_loader, test_loader, cfg.epochs, verbose=verbose)
    add_row("WAF4", 32, acc, "WAF4", "fp32")

    # ---- INT8 rows ------------------------------------------------------------
    q8 = int8()
    base8 = _build(ConvSpec("im2row", q8), cfg.width_multiplier, num_classes)
    acc8, _ = train_and_evaluate(base8, train_loader, test_loader, cfg.epochs, verbose=verbose)
    add_row("im2row", 8, acc8, "im2row", "int8")
    add_row("im2col", 8, acc8, "im2col", "int8")

    wa28 = _build(ConvSpec("F2", q8, flex=False), cfg.width_multiplier, num_classes)
    acc, _ = train_and_evaluate(wa28, train_loader, test_loader, cfg.epochs, verbose=verbose)
    add_row("WAF2", 8, acc, "WAF2", "int8")

    wa48 = _build(ConvSpec("F4", q8, flex=True), cfg.width_multiplier, num_classes)
    acc, _ = train_and_evaluate(wa48, train_loader, test_loader, cfg.epochs, verbose=verbose)
    add_row("WAF4", 8, acc, "WAF4", "int8")

    # ---- wiNAS rows (optional at small scale) -----------------------------------
    if include_nas:
        from repro.nas import SearchConfig, WiNAS, wa_space

        tr, val = train_set.split(0.5)
        from repro.data.loader import DataLoader

        tr_loader = DataLoader(tr, batch_size=cfg.batch_size, seed=seed)
        val_loader = DataLoader(val, batch_size=cfg.batch_size, seed=seed + 1)
        plan = WiNAS.make_plan(wa_space("int8"))
        search_model = resnet18(
            width_multiplier=cfg.width_multiplier, plan=plan, num_classes=num_classes
        )
        nas = WiNAS(search_model, SearchConfig(epochs=cfg.search_epochs, lambda2=0.02))
        nas.populate_latencies(train_set.images[: cfg.batch_size])
        result = nas.search(tr_loader, val_loader)
        final = resnet18(
            width_multiplier=cfg.width_multiplier, plan=result.plan, num_classes=num_classes
        )
        acc, _ = train_and_evaluate(final, train_loader, test_loader, cfg.epochs, verbose=verbose)
        report.add(
            conv="wiNAS-WA",
            bits=8,
            accuracy=acc,
            a53_ms=float("nan"),
            a73_ms=float("nan"),
            a53_speedup=float("nan"),
            a73_speedup=float("nan"),
            searched_latency_ms=result.expected_latency_ms,
        )
        report.notes.append(
            "wiNAS-WA row: latency is the searched per-layer sum at experiment "
            "scale, not the full-size network prediction."
        )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run(verbose=True).format())
