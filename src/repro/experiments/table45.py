"""Shared driver for Tables 4 (SqueezeNet) and 5 (ResNeXt-20 8×16).

Both tables have the same structure: {im2row, WAF2, WAF4} × {static, flex}
× {FP32, INT8}, on CIFAR-10 and CIFAR-100.  The expected shape under INT8:
WAF4-static collapses (79.3 / 76.7 in the paper), WAF4-flex recovers to
within ~1 point of im2row; the appendix attributes the milder ResNet-18
gap to these models having fewer consecutive 3×3 layers.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.experiments.common import ExperimentReport, get_scale, train_and_evaluate
from repro.models.common import ConvSpec, LayerPlan
from repro.quant.qconfig import QConfig, fp32, int8

#: (name, algorithm, transforms) rows of both tables.
ROWS: List[Tuple[str, str, str]] = [
    ("im2row", "im2row", "-"),
    ("WAF2", "F2", "static"),
    ("WAF2", "F2", "flex"),
    ("WAF4", "F4", "static"),
    ("WAF4", "F4", "flex"),
]


def run_architecture(
    experiment: str,
    build: Callable[[LayerPlan, int], object],
    paper_reference,
    scale: str = "smoke",
    seed: int = 0,
    dataset: str = "cifar10",
    bits: Tuple[int, ...] = (32, 8),
    verbose: bool = False,
) -> ExperimentReport:
    cfg = get_scale(scale)
    train_loader, test_loader, train_set, _ = cfg.loaders(dataset, seed=seed)
    report = ExperimentReport(experiment, scale, paper_reference=paper_reference)
    for bit in bits:
        qc = fp32() if bit == 32 else QConfig(bits=bit)
        for name, algorithm, transforms in ROWS:
            if algorithm == "im2row":
                spec = ConvSpec("im2row", qc)
            else:
                spec = ConvSpec(algorithm, qc, flex=(transforms == "flex"))
            model = build(LayerPlan(spec), train_set.num_classes)
            acc, _ = train_and_evaluate(
                model, train_loader, test_loader, cfg.epochs, verbose=verbose
            )
            report.add(conv=name, bits=bit, transforms=transforms, accuracy=acc)
    return report
