"""Table 1 — post-training swap of direct convolutions for Winograd.

Protocol (paper §3.1): train a ResNet-18 with standard convolutions in
FP32; then, *without retraining*, replace every 3×3 convolution with
F2/F4/F6 at 32/16/8-bit, warm up the quantizer moving averages on the
training set (the footnote's relaxation), and evaluate.

Expected shape: FP32 columns match the direct baseline for every tile
size; under quantization F2 survives but F4 and F6 collapse to near
chance.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentReport, get_scale, train_and_evaluate
from repro.models.common import ConvSpec, LayerPlan
from repro.models.resnet import resnet18
from repro.paperdata.tables import TABLE1_ACCURACY
from repro.quant.qconfig import QConfig, fp32
from repro.training.adaptation import transfer_weights
from repro.training.calibrate import calibrate
from repro.training.trainer import evaluate

METHODS = ("direct", "F2", "F4", "F6")
BIT_WIDTHS = (32, 16, 8)


def _qconfig(bits: int) -> QConfig:
    return fp32() if bits == 32 else QConfig(bits=bits)


def run(scale: str = "smoke", seed: int = 0, verbose: bool = False) -> ExperimentReport:
    cfg = get_scale(scale)
    train_loader, test_loader, *_ = cfg.loaders("cifar10", seed=seed)
    report = ExperimentReport("table1_posttraining_swap", scale, paper_reference=TABLE1_ACCURACY)

    source = resnet18(
        width_multiplier=cfg.width_multiplier, spec=ConvSpec("im2row"), rng=None
    )
    base_acc, _ = train_and_evaluate(
        source, train_loader, test_loader, cfg.epochs, verbose=verbose
    )
    report.notes.append(f"FP32 direct-conv baseline accuracy: {base_acc:.3f}")

    for method in METHODS:
        for bits in BIT_WIDTHS:
            qc = _qconfig(bits)
            if method == "direct":
                spec = ConvSpec("im2row", qc)
            else:
                spec = ConvSpec(method, qc, flex=False)
            # Swap every layer (Table 1 replaces all convolutions).
            swapped = resnet18(
                width_multiplier=cfg.width_multiplier, plan=LayerPlan(spec)
            )
            transfer_weights(source, swapped)
            if qc.enabled:
                calibrate(swapped, train_loader, num_batches=4)
            acc = evaluate(swapped, test_loader)
            report.add(
                method=method,
                bits=bits,
                accuracy=acc,
                paper_accuracy=TABLE1_ACCURACY[method][bits] / 100.0,
            )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run(verbose=True).format())
