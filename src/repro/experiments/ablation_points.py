"""Ablation — Cook–Toom polynomial point selection (paper §7).

"Bad polynomial points for constructing G, Bᵀ and Aᵀ introduce significant
deviations … good starting points are also important even when learning
the transformations."  We quantify this without training: for each F(m, r)
and candidate point set, measure (a) the FP64 output deviation of the
Winograd convolution from direct convolution and (b) the same deviation
when every pipeline stage is fake-quantized to INT8 — the regime the paper
cares about.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.common import ExperimentReport
from repro.paperdata.tables import TABLE1_ACCURACY
from repro.quant.quantizer import fake_quant_array
from repro.winograd.cook_toom import INFINITY, default_points
from repro.winograd.functional import direct_conv2d, winograd_conv2d
from repro.winograd.transforms import get_transform


def _point_sets(n_finite: int) -> Dict[str, Sequence]:
    """Named candidate point sets with ``n_finite`` finite points + ∞."""
    sets: Dict[str, Sequence] = {"default": default_points(n_finite)}
    # Naive consecutive integers: the classically *bad* choice — their
    # powers explode, inflating the transforms' dynamic range.
    naive = [Fraction(0)] + [
        Fraction(s * k)
        for k in range(1, n_finite)
        for s in (1, -1)
    ]
    sets["integers"] = tuple(naive[:n_finite]) + (INFINITY,)
    # Reciprocal-heavy set (small magnitudes): good dynamic range.
    recip = [Fraction(0), Fraction(1), Fraction(-1)]
    k = 2
    while len(recip) < n_finite:
        recip += [Fraction(1, k), Fraction(-1, k)]
        k *= 2
    sets["reciprocals"] = tuple(recip[:n_finite]) + (INFINITY,)
    return sets


def _pipeline_error(m: int, r: int, points, bits: int, rng: np.random.Generator) -> float:
    """Mean |winograd − direct| relative error on random data."""
    transform = get_transform(m, r, points=points)
    x = rng.standard_normal((2, 8, 12, 12))
    w = rng.standard_normal((8, 8, r, r)) / r
    reference = direct_conv2d(x, w, padding=(r - 1) // 2)
    quant = None
    if bits < 32:
        quant = lambda a, stage: fake_quant_array(a, bits)
    y = winograd_conv2d(x, w, transform, padding=(r - 1) // 2, quant=quant)
    scale = np.abs(reference).mean() or 1.0
    return float(np.abs(y - reference).mean() / scale)


def run(scale: str = "smoke", seed: int = 0) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    report = ExperimentReport("ablation_polynomial_points", scale,
                              paper_reference=TABLE1_ACCURACY)
    for m, r in ((2, 3), (4, 3), (6, 3), (4, 5)):
        n_finite = m + r - 2
        for name, points in _point_sets(n_finite).items():
            fp64 = _pipeline_error(m, r, points, 32, np.random.default_rng(seed))
            i8 = _pipeline_error(m, r, points, 8, np.random.default_rng(seed))
            transform = get_transform(m, r, points=points)
            dyn_range = max(
                float(np.abs(transform.BT).max()),
                float(np.abs(transform.AT).max()),
            )
            report.add(
                config=f"F({m},{r})",
                points=name,
                fp64_error=fp64,
                int8_error=i8,
                transform_range=dyn_range,
            )
    report.notes.append(
        "expected shape: errors grow with tile size; 'integers' points blow "
        "up the transform dynamic range and the INT8 error; 'default' and "
        "'reciprocals' stay usable (cf. Table 1 collapse and §7)."
    )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
