"""Figure 9 — the per-layer architectures wiNAS discovers.

Runs the search in both spaces (WA at INT8; WA-Q over {FP32, INT16, INT8})
and reports the chosen per-layer plan next to the paper's published
choices.  At reproduction scale the exact per-layer assignment will not
match the paper layer-for-layer (different data, width, epochs); the
comparable *shape* is the distribution: F4 dominating early/middle layers,
F2 and im2row claiming the small-spatial tail, and — in the WA-Q space —
higher precision concentrating in the first layers.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from repro.data.loader import DataLoader
from repro.experiments.common import ExperimentReport, get_scale
from repro.models.resnet import resnet18
from repro.nas import SearchConfig, WiNAS, wa_space, waq_space
from repro.paperdata.tables import FIGURE9_ARCHITECTURES


def run(
    scale: str = "smoke",
    seed: int = 0,
    dataset: str = "cifar10",
    lambda2: float = 0.02,
    spaces: Sequence[str] = ("WA", "WA-Q"),
    verbose: bool = False,
) -> ExperimentReport:
    cfg = get_scale(scale)
    _, _, train_set, _ = cfg.loaders(dataset, seed=seed)
    tr, val = train_set.split(0.5)
    tr_loader = DataLoader(tr, batch_size=cfg.batch_size, seed=seed)
    val_loader = DataLoader(val, batch_size=cfg.batch_size, seed=seed + 1)
    report = ExperimentReport(
        "figure9_winas_architectures", scale, paper_reference=FIGURE9_ARCHITECTURES
    )

    for space_name in spaces:
        candidates = wa_space("int8") if space_name == "WA" else waq_space()
        plan = WiNAS.make_plan(candidates, seed=seed)
        model = resnet18(
            width_multiplier=cfg.width_multiplier,
            plan=plan,
            num_classes=train_set.num_classes,
        )
        nas = WiNAS(
            model,
            SearchConfig(epochs=cfg.search_epochs, lambda2=lambda2, verbose=verbose),
        )
        nas.populate_latencies(train_set.images[: cfg.batch_size])
        result = nas.search(tr_loader, val_loader)
        counts = Counter(c.algorithm for c in result.chosen)
        for i, cand in enumerate(result.chosen):
            report.add(
                space=space_name,
                layer=i,
                algorithm=cand.algorithm,
                precision=cand.precision,
            )
        report.notes.append(
            f"{space_name}: algorithm histogram {dict(counts)}, "
            f"E[latency] {result.expected_latency_ms:.3f} ms (layer sum, "
            f"experiment scale)"
        )
    return report


if __name__ == "__main__":  # pragma: no cover
    rep = run(verbose=True)
    print(rep.format())
