"""Figure 4 — accuracy vs width multiplier, per bit-width, per config.

The paper sweeps width 0.125–1.0 across {32, 16, 10, 8}-bit for seven
configurations: im2row, F2(-flex), F4(-flex), F6(-flex).  The claims the
sweep supports: (i) in FP32 everything matches im2row; (ii) under
quantization the flex configurations strictly dominate their static
counterparts (≈10%/5% for F4/F6 at INT8); (iii) accuracy scales with
width.  The default smoke run covers one width × {32, 8}-bit; pass wider
``widths``/``bit_widths`` to fill in the full figure.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.common import ExperimentReport, get_scale, train_and_evaluate
from repro.models.common import ConvSpec, uniform_plan
from repro.models.resnet import NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS, resnet18
from repro.quant.qconfig import QConfig, fp32

#: The seven line styles of Figure 4.
CONFIGS: Tuple[Tuple[str, str, bool], ...] = (
    ("im2row", "im2row", False),
    ("F2", "F2", False),
    ("F2-flex", "F2", True),
    ("F4", "F4", False),
    ("F4-flex", "F4", True),
    ("F6", "F6", False),
    ("F6-flex", "F6", True),
)


def run(
    scale: str = "smoke",
    seed: int = 0,
    widths: Optional[Sequence[float]] = None,
    bit_widths: Optional[Sequence[int]] = None,
    configs: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> ExperimentReport:
    cfg = get_scale(scale)
    if widths is None:
        widths = (
            (0.125, 0.25, 0.5, 0.75, 1.0) if scale == "paper" else (cfg.width_multiplier,)
        )
    if bit_widths is None:
        bit_widths = (32, 16, 10, 8) if scale == "paper" else (32, 8)
    selected = CONFIGS if configs is None else tuple(c for c in CONFIGS if c[0] in configs)

    train_loader, test_loader, train_set, _ = cfg.loaders("cifar10", seed=seed)
    report = ExperimentReport("figure4_width_sweep", scale)
    for width in widths:
        for bits in bit_widths:
            qc = fp32() if bits == 32 else QConfig(bits=bits)
            for name, algorithm, flex in selected:
                spec = (
                    ConvSpec("im2row", qc)
                    if algorithm == "im2row"
                    else ConvSpec(algorithm, qc, flex=flex)
                )
                plan = uniform_plan(spec, NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS)
                model = resnet18(
                    width_multiplier=width, plan=plan, num_classes=train_set.num_classes
                )
                acc, _ = train_and_evaluate(
                    model, train_loader, test_loader, cfg.epochs, verbose=verbose
                )
                report.add(
                    config=name,
                    width=width,
                    bits=bits,
                    accuracy=acc,
                    params=model.num_parameters(),
                )
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run(verbose=True).format())
