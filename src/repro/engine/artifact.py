"""AOT compiled-plan artifacts: save a plan once, ``mmap`` it everywhere.

A compiled plan is pure data — a step program over a register file plus
frozen attribute dicts whose heavy entries are plain ``np.ndarray``
weights (folded BN, pre-transformed Winograd filters, integer weight
codes, requant multipliers).  This module serializes that data to a
single versioned binary file and loads it back with **read-only
memory-mapped weight views**, so a serving worker boots a servable plan
in milliseconds without importing the compiler or the model zoo — and
every worker on the host shares the weight pages copy-on-write through
the OS page cache.

The byte-level layout (header, section table, alignment rules, content
hash, and the compatibility/rejection policy) is specified normatively
in ``docs/artifact-format.md``; this module is its implementation.  In
short::

    [ 72-byte header | zero pad | page-aligned tensor segments | manifest ]

* the fixed header carries magic ``REPROPLN``, the format version, total
  file size, the manifest location, and a SHA-256 over everything after
  the header;
* every tensor segment starts on a 4096-byte (page) boundary so an
  ``mmap`` view of it is itself page-aligned and stays copy-on-write
  shareable across forked workers;
* the manifest is one JSON document holding the step program, the plan
  metadata, and the tensor table.  Attribute values round-trip through a
  tagged encoding (see :class:`_AttrEncoder`) that preserves tuples,
  NumPy dtypes/scalars, and — critically for the int8 backend — **shared
  dict identity** (a producer's ``emit_q`` *is* its consumer's
  ``q_input`` dict; the requantizer's ``q`` *is* the step's
  ``q_output``), so a loaded plan re-freezes dynamic observer ranges
  through exactly the same aliases a fresh compile would.

Loaded plans are bit-identical to freshly compiled ones on every
backend: the tensor bytes are verbatim, the kernels are resolved from
the same registry (mirroring ``compile_model``), and read-only mapping
is safe because all attribute-array mutation happens at compile time —
the int8 runtime preparation only *adds* freshly allocated arrays to the
``i8`` dicts, never writes into existing weight arrays.

Failure policy: every malformed input raises a typed
:class:`ArtifactError` subclass (wrong magic, unsupported version,
truncation, hash mismatch), never a bare struct/JSON/NumPy crash — the
serving control plane turns these into clean HTTP errors.

Typical use::

    from repro.engine.artifact import save_plan, load_plan

    save_plan(plan, "model.rpln", input_shape=(1, 3, 32, 32))
    plan = load_plan("model.rpln")          # milliseconds, no compiler
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.plan import CompiledPlan, Step
from repro.engine.registry import BACKENDS, registry

#: File magic: first 8 bytes of every plan artifact.
MAGIC = b"REPROPLN"

#: Current artifact format version.  The loader rejects any other value
#: (forward *and* backward: a version bump means the layout changed) —
#: see the compatibility policy in ``docs/artifact-format.md``.
#: Version 2: plans may carry transform-domain residency edges
#: (``resident_out``/``resident_src`` shared dicts) and per-tap scale
#: grids (``tap_fv``/``tap_fh``/``qmax_v``/``qmax_h`` in the ``i8``
#: block); version-1 readers would silently run resident steps as plain
#: round trips, so the version gate rejects rather than degrades.
FORMAT_VERSION = 2

#: Fixed header: magic, format version, header size, total file size,
#: manifest offset, manifest length, SHA-256 of bytes [header_size, file
#: size).  Little-endian, 72 bytes.
HEADER = struct.Struct("<8sIIQQQ32s")

#: Tensor segments start on this boundary (one page on every platform we
#: target), so memory-mapped weight views are page-aligned and the OS
#: can share them copy-on-write across forked serving workers.
TENSOR_ALIGN = 4096

#: Conventional artifact file extension ("repro plan").
EXTENSION = ".rpln"


class ArtifactError(Exception):
    """Base class for every plan-artifact failure (save or load)."""


class ArtifactSaveError(ArtifactError):
    """The plan cannot be serialized (e.g. opaque ``eager_module`` steps
    carrying a live Python module, or attribute values outside the
    encodable set listed in ``docs/artifact-format.md``)."""


class ArtifactFormatError(ArtifactError):
    """The file is not a well-formed plan artifact (bad magic, impossible
    offsets, undecodable manifest)."""


class ArtifactVersionError(ArtifactFormatError):
    """The artifact's format version is not the one this build reads."""


class ArtifactTruncatedError(ArtifactFormatError):
    """The file is shorter than its header claims (partial write/copy)."""


class ArtifactCorruptError(ArtifactFormatError):
    """The content hash does not match — bytes changed after writing."""


# ---------------------------------------------------------------------------
# Attribute-value encoding (manifest side)
# ---------------------------------------------------------------------------
#
# JSON carries the structure; tags carry what JSON cannot (the encoding
# table is normative in docs/artifact-format.md § Manifest):
#
#   {"__nd__": i}            np.ndarray -> index into the tensor table
#   {"__t__": [...]}         tuple (JSON arrays decode back to lists)
#   {"__dtype__": "float32"} NumPy dtype *class* (np.float32, ...)
#   {"__np__": ["int64", v]} NumPy scalar
#   {"__obj__": n, "v": {}}  first visit of a dict: defines object n
#   {"__ref__": n}           later visit of the same dict object
#
# The __obj__/__ref__ memoization preserves the object graph, not just
# the values: the int8 finalizer aliases dicts across steps (emit_q,
# rq_out["q"]) and the executor freezes dynamic observer ranges by
# mutating those dicts in place, so identity is part of the semantics.

_TAGS = ("__nd__", "__t__", "__dtype__", "__np__", "__obj__", "__ref__")


class _AttrEncoder:
    """Encodes step attribute values to tagged JSON, collecting tensors."""

    def __init__(self) -> None:
        self.tensors: List[np.ndarray] = []
        self._tensor_ids: Dict[int, int] = {}
        self._obj_ids: Dict[int, int] = {}
        # id() keys are only stable while the object lives; pin every
        # memoized object for the encoder's lifetime.
        self._pins: List[Any] = []

    def encode(self, value: Any, where: str) -> Any:
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, np.ndarray):
            return {"__nd__": self._tensor(value, where)}
        if isinstance(value, np.generic):
            return {"__np__": [value.dtype.name, value.item()]}
        if isinstance(value, type) and issubclass(value, np.generic):
            return {"__dtype__": np.dtype(value).name}
        if isinstance(value, np.dtype):
            return {"__dtype__": value.name}
        if isinstance(value, tuple):
            return {"__t__": [self.encode(v, where) for v in value]}
        if isinstance(value, list):
            return [self.encode(v, where) for v in value]
        if isinstance(value, dict):
            ref = self._obj_ids.get(id(value))
            if ref is not None:
                return {"__ref__": ref}
            ref = len(self._obj_ids)
            self._obj_ids[id(value)] = ref
            self._pins.append(value)
            encoded: Dict[str, Any] = {}
            for key, item in value.items():
                if not isinstance(key, str) or key in _TAGS:
                    raise ArtifactSaveError(
                        f"{where}: dict key {key!r} is not a plain string "
                        "(or collides with an encoding tag)"
                    )
                encoded[key] = self.encode(item, f"{where}.{key}")
            return {"__obj__": ref, "v": encoded}
        raise ArtifactSaveError(
            f"{where}: value of type {type(value).__name__} is not "
            "serializable (see docs/artifact-format.md for the attribute "
            "encoding table)"
        )

    def _tensor(self, arr: np.ndarray, where: str) -> int:
        if arr.dtype.hasobject:
            raise ArtifactSaveError(
                f"{where}: object-dtype array cannot be serialized"
            )
        index = self._tensor_ids.get(id(arr))
        if index is None:
            index = len(self.tensors)
            self._tensor_ids[id(arr)] = index
            self._pins.append(arr)
            self.tensors.append(arr)
        return index


class _AttrDecoder:
    """Inverse of :class:`_AttrEncoder` over already-loaded tensor views."""

    def __init__(self, tensors: List[np.ndarray]) -> None:
        self._tensors = tensors
        self._objects: Dict[int, dict] = {}

    def decode(self, value: Any) -> Any:
        if isinstance(value, list):
            return [self.decode(v) for v in value]
        if not isinstance(value, dict):
            return value
        if "__nd__" in value:
            return self._tensors[value["__nd__"]]
        if "__t__" in value:
            return tuple(self.decode(v) for v in value["__t__"])
        if "__dtype__" in value:
            return np.dtype(value["__dtype__"]).type
        if "__np__" in value:
            name, item = value["__np__"]
            return np.dtype(name).type(item)
        if "__ref__" in value:
            return self._objects[value["__ref__"]]
        if "__obj__" in value:
            # Install the dict before decoding its values so __ref__
            # back-edges (and any cycle) resolve to the same object.
            obj: Dict[str, Any] = {}
            self._objects[value["__obj__"]] = obj
            for key, item in value["v"].items():
                obj[key] = self.decode(item)
            return obj
        return {key: self.decode(item) for key, item in value.items()}


# ---------------------------------------------------------------------------
# Save
# ---------------------------------------------------------------------------


def save_plan(
    plan: CompiledPlan,
    path: str,
    input_shape: Optional[Sequence[int]] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Serialize ``plan`` to the artifact file at ``path``.

    ``input_shape`` (optional, NCHW) is recorded in the manifest so
    :func:`load_plan` can pre-build the memory plan for the expected
    traffic shape at load time.  ``extra`` is an opaque JSON-able dict
    stored alongside (the CLI records the model spec name there).

    Returns a summary dict (file size, tensor counts, hex content hash).
    Raises :class:`ArtifactSaveError` for unserializable plans — most
    notably plans containing opaque ``eager_module`` steps, which carry
    a live Python module instead of data.

    The write is atomic: bytes go to ``path + ".tmp"`` and are renamed
    into place only when complete, so a crashed save never leaves a
    half-written artifact where a loader might find it.
    """
    encoder = _AttrEncoder()
    steps_doc = []
    for i, step in enumerate(plan.steps):
        where = f"step {i} ({step.op}{f' [{step.label}]' if step.label else ''})"
        if step.op == "eager_module":
            raise ArtifactSaveError(
                f"{where}: opaque eager_module steps carry a live Python "
                "module and cannot be serialized; compile a model whose "
                "layers all have lowering handlers"
            )
        steps_doc.append(
            {
                "op": step.op,
                "inputs": list(step.inputs),
                "output": step.output,
                "label": step.label,
                "domain": step.domain,
                "attrs": encoder.encode(step.attrs, where),
            }
        )

    # Tensor payloads: contiguous C-order bytes, page-aligned offsets.
    tensor_table = []
    offset = TENSOR_ALIGN  # first tensor starts on the first page boundary
    payloads: List[np.ndarray] = []
    for arr in encoder.tensors:
        contiguous = np.ascontiguousarray(arr)
        tensor_table.append(
            {
                "offset": offset,
                "nbytes": int(contiguous.nbytes),
                "dtype": contiguous.dtype.name,
                "shape": list(contiguous.shape),
            }
        )
        payloads.append(contiguous)
        offset += contiguous.nbytes
        offset += (-offset) % TENSOR_ALIGN

    manifest = {
        "format": {"magic": MAGIC.decode(), "version": FORMAT_VERSION,
                   "tensor_align": TENSOR_ALIGN},
        "plan": {
            "backend": plan.backend,
            "signature": plan.signature,
            "source": plan.source,
            "num_regs": plan.num_regs,
            "input_reg": plan.input_reg,
            "output_reg": plan.output_reg,
            "input_shape": list(input_shape) if input_shape is not None else None,
        },
        "steps": steps_doc,
        "tensors": tensor_table,
        "extra": extra or {},
    }
    manifest_bytes = json.dumps(manifest, separators=(",", ":")).encode()

    tmp_path = f"{path}.tmp"
    hasher = hashlib.sha256()
    with open(tmp_path, "wb") as f:
        f.write(b"\x00" * HEADER.size)  # placeholder, rewritten below

        position = HEADER.size

        def emit(data: bytes) -> None:
            nonlocal position
            f.write(data)
            hasher.update(data)
            position += len(data)

        for entry, payload in zip(tensor_table, payloads):
            emit(b"\x00" * (entry["offset"] - position))
            emit(payload.tobytes())
        emit(b"\x00" * ((-position) % TENSOR_ALIGN))
        manifest_off = position
        emit(manifest_bytes)
        file_size = position

        f.seek(0)
        f.write(
            HEADER.pack(
                MAGIC,
                FORMAT_VERSION,
                HEADER.size,
                file_size,
                manifest_off,
                len(manifest_bytes),
                hasher.digest(),
            )
        )
    os.replace(tmp_path, path)
    return {
        "path": path,
        "file_size": file_size,
        "tensors": len(tensor_table),
        "tensor_bytes": sum(t["nbytes"] for t in tensor_table),
        "steps": len(steps_doc),
        "backend": plan.backend,
        "content_hash": hasher.hexdigest(),
    }


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------


def _read_header(raw: np.ndarray, path: str) -> Tuple[int, int, int, bytes]:
    """Validate the fixed header; returns (file_size, manifest_off,
    manifest_len, digest).  Rejection policy per docs/artifact-format.md:
    magic first, then version, then geometry."""
    if raw.size < HEADER.size:
        raise ArtifactTruncatedError(
            f"{path}: {raw.size} bytes is shorter than the "
            f"{HEADER.size}-byte artifact header"
        )
    magic, version, header_size, file_size, manifest_off, manifest_len, digest = (
        HEADER.unpack_from(bytes(raw[:HEADER.size]))
    )
    if magic != MAGIC:
        raise ArtifactFormatError(
            f"{path}: not a repro plan artifact (magic {magic!r})"
        )
    if version != FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{path}: artifact format version {version} "
            f"(this build reads only version {FORMAT_VERSION})"
        )
    if header_size != HEADER.size:
        raise ArtifactFormatError(
            f"{path}: header claims {header_size} header bytes, "
            f"expected {HEADER.size}"
        )
    if raw.size < file_size:
        raise ArtifactTruncatedError(
            f"{path}: file is {raw.size} bytes but the header "
            f"records {file_size} (truncated write or copy?)"
        )
    if not (HEADER.size <= manifest_off and
            manifest_off + manifest_len <= file_size):
        raise ArtifactFormatError(
            f"{path}: manifest section [{manifest_off}, "
            f"{manifest_off + manifest_len}) falls outside the file"
        )
    return file_size, manifest_off, manifest_len, digest


def _open_mapped(path: str) -> np.ndarray:
    """The whole file as a read-only byte map (ndarray over ``mmap``)."""
    try:
        return np.memmap(path, dtype=np.uint8, mode="r")
    except FileNotFoundError:
        raise  # callers map "no such artifact" separately (HTTP 404)
    except (OSError, ValueError) as exc:
        raise ArtifactFormatError(f"{path}: cannot map artifact: {exc}") from exc


def _parse_manifest(raw: np.ndarray, off: int, length: int, path: str) -> dict:
    try:
        manifest = json.loads(bytes(raw[off:off + length]).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactFormatError(
            f"{path}: manifest is not valid JSON ({exc})"
        ) from exc
    if not isinstance(manifest, dict) or "plan" not in manifest:
        raise ArtifactFormatError(f"{path}: manifest has no plan section")
    return manifest


def _tensor_views(
    raw: np.ndarray, table: List[dict], file_size: int, path: str
) -> List[np.ndarray]:
    """Read-only ndarray views onto the mapped tensor segments.

    Each view shares the ``mmap`` pages (no copy, copy-on-write across
    forks); NumPy propagates the map's read-only flag, so a kernel bug
    that tried to write a weight would fault loudly instead of silently
    corrupting a shared page.
    """
    views = []
    for i, entry in enumerate(table):
        off, nbytes = entry["offset"], entry["nbytes"]
        if off % TENSOR_ALIGN:
            raise ArtifactFormatError(
                f"{path}: tensor {i} offset {off} is not "
                f"{TENSOR_ALIGN}-byte aligned"
            )
        if not (HEADER.size <= off and off + nbytes <= file_size):
            raise ArtifactFormatError(
                f"{path}: tensor {i} [{off}, {off + nbytes}) "
                "falls outside the file"
            )
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        if int(np.prod(shape, dtype=np.int64)) * dtype.itemsize != nbytes:
            raise ArtifactFormatError(
                f"{path}: tensor {i} shape {shape} × {dtype} "
                f"does not cover {nbytes} bytes"
            )
        view = raw[off:off + nbytes].view(dtype).reshape(shape)
        views.append(view)
    return views


def content_hash(path: str) -> str:
    """The artifact's recorded SHA-256 content hash (hex), from the
    header alone — no payload read, no verification.  Serving uses a
    prefix of this as the deployment's version id."""
    raw = _open_mapped(path)
    _, _, _, digest = _read_header(raw, path)
    return digest.hex()


def read_manifest(path: str, verify: bool = False) -> dict:
    """The artifact's manifest (plan metadata, step program, tensor
    table) as a dict, without constructing a plan.

    With ``verify=True`` the SHA-256 content hash is checked first.
    Used by ``repro compile --inspect`` and the test suite.
    """
    raw = _open_mapped(path)
    file_size, manifest_off, manifest_len, digest = _read_header(raw, path)
    if verify:
        _verify_hash(raw, file_size, digest, path)
    return _parse_manifest(raw, manifest_off, manifest_len, path)


def _verify_hash(raw: np.ndarray, file_size: int, digest: bytes, path: str) -> None:
    actual = hashlib.sha256(raw[HEADER.size:file_size]).digest()
    if actual != digest:
        raise ArtifactCorruptError(
            f"{path}: content hash mismatch (expected "
            f"{digest.hex()[:16]}…, got {actual.hex()[:16]}…) — "
            "the artifact was modified after writing"
        )


def load_plan(path: str, verify: bool = True, prepare: bool = True) -> CompiledPlan:
    """Load a plan artifact into a servable :class:`CompiledPlan`.

    Weight and constant arrays are **read-only views onto the mapped
    file** — no tensor bytes are copied at load time; the OS pages them
    in on first use and shares them copy-on-write across every process
    mapping the same artifact.  Kernels are resolved from the registry
    exactly as ``compile_model`` resolves them, so a loaded plan is
    bit-identical to a freshly compiled one (pinned by the differential
    fuzz corpus's save/load/run leg).

    ``verify=True`` (default) checks the SHA-256 content hash before
    trusting any byte — a sequential read of the file, far cheaper than
    the compile it replaces; pass ``verify=False`` only where the file
    is already trusted (e.g. re-mapping in a forked worker).
    ``prepare=True`` pre-builds the arena memory plan for the manifest's
    recorded ``input_shape`` so the first request allocates nothing.

    Failure modes (all :class:`ArtifactError` subclasses; rejection
    policy in ``docs/artifact-format.md`` § Compatibility): wrong magic
    → :class:`ArtifactFormatError`; other format version →
    :class:`ArtifactVersionError`; short file →
    :class:`ArtifactTruncatedError`; hash mismatch →
    :class:`ArtifactCorruptError`.
    """
    raw = _open_mapped(path)
    file_size, manifest_off, manifest_len, digest = _read_header(raw, path)
    if verify:
        _verify_hash(raw, file_size, digest, path)
    manifest = _parse_manifest(raw, manifest_off, manifest_len, path)

    meta = manifest["plan"]
    backend = meta.get("backend")
    if backend not in BACKENDS:
        raise ArtifactFormatError(
            f"{path}: unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    tensors = _tensor_views(raw, manifest.get("tensors", []), file_size, path)
    decoder = _AttrDecoder(tensors)
    steps: List[Step] = []
    try:
        for doc in manifest["steps"]:
            attrs = decoder.decode(doc["attrs"])
            steps.append(
                Step(
                    op=doc["op"],
                    inputs=tuple(doc["inputs"]),
                    output=doc["output"],
                    attrs=attrs,
                    label=doc.get("label", ""),
                    domain=doc.get("domain", "float"),
                )
            )
    except (KeyError, IndexError, TypeError) as exc:
        raise ArtifactFormatError(
            f"{path}: malformed step program ({type(exc).__name__}: {exc})"
        ) from exc
    for step in steps:
        try:
            step.fn = registry.get(step.op, backend)
        except KeyError as exc:
            raise ArtifactFormatError(f"{path}: {exc}") from exc
    plan = CompiledPlan(
        steps=steps,
        num_regs=meta["num_regs"],
        input_reg=meta["input_reg"],
        output_reg=meta["output_reg"],
        backend=backend,
        signature=meta.get("signature", ""),
        source=meta.get("source", ""),
    )
    plan.artifact_path = os.path.abspath(path)
    input_shape = meta.get("input_shape")
    if prepare and input_shape:
        plan.prepare(tuple(input_shape))
    return plan
