"""The compile-time memory planner: register shapes → one reusable arena.

Steady-state inference through a compiled plan used to allocate a fresh
ndarray for every step output and every kernel temporary.  The planner
removes that:

* **Shape/dtype inference** derives every register's shape (batch axis
  symbolic — all lowered ops carry the batch on axis 0, so per-sample
  shapes are enough) from the step attributes alone, with no data.
  Plans containing an op with no shape rule (``eager_module``) keep the
  legacy allocate-per-step executor.
* **Liveness → slot assignment** extends the executor's existing
  ``frees`` analysis into a static buffer-reuse plan: registers whose
  live ranges are disjoint share one arena slot (best-fit over freed
  capacities).  A step's output never shares a slot with its own inputs,
  so no kernel can alias itself; ops that *return* their input
  (``flatten``'s reshape view, ``record_hw``) are alias-classed with it
  so the shared memory is freed only when both die.
* **The arena** materialises the slots as flat float32 buffers sized for
  the actual batch (capacity-based: a bigger batch grows them once) plus
  a step-keyed scratch space the kernels route their temporaries through
  (``take_scratch``) — GEMM row buffers, padded inputs, Winograd tile
  and transform-domain intermediates, quantization code buffers.  After
  warm-up every request hits an existing buffer: zero steady-state
  arena allocations.

Arenas are checked out per ``run`` from a small pool, so concurrent
executions of one shared plan (the inference server does this from its
worker pool) never touch the same buffers.

Thread-safety contract of the scratch space: keys are ``(step, tag,
lane)``.  Serial execution uses lane 0; the parallel scheduler gives
each worker lane its own key set and processes its chunks sequentially,
so a scratch buffer is never written by two threads at once and a chunk
result that *views* scratch is copied into the output register before
the lane moves on.
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Ops whose kernel may return its input array (or a view of it): the
#: output register aliases the input register's memory, so they must
#: share a slot lifetime.
ALIAS_OPS = frozenset({"flatten", "record_hw"})

_ITEMSIZE = 4  # every register is float32


def _prod(shape) -> int:
    out = 1
    for s in shape:
        out *= int(s)
    return out


# ---------------------------------------------------------------------------
# Shape inference (per-sample: batch axis fixed at 1)
# ---------------------------------------------------------------------------


def _pool_hw(h: int, w: int, kernel, stride) -> Tuple[int, int]:
    kh, kw = kernel
    sh, sw = stride
    return (h - kh) // sh + 1, (w - kw) // sw + 1


def infer_step_shape(step, in_shapes: List[Optional[tuple]]) -> Optional[tuple]:
    """Output shape of one step given its input shapes (batch=1), or
    ``None`` when the op has no rule (or an input is unknown)."""
    if any(s is None for s in in_shapes):
        return None
    a = step.attrs
    op = step.op
    s0 = in_shapes[0] if in_shapes else None
    if op in ("relu", "affine", "record_hw", "add"):
        return s0
    if op == "flatten":
        return (s0[0], _prod(s0[1:]))
    if op == "concat":
        axis = a.get("axis", 1)
        out = list(s0)
        out[axis] = sum(s[axis] for s in in_shapes)
        return tuple(out)
    if op in ("max_pool", "avg_pool"):
        n, c, h, w = s0
        nh, nw = _pool_hw(h, w, a["kernel"], a["stride"])
        return (n, c, nh, nw)
    if op == "global_avg_pool":
        return (s0[0], s0[1])
    if op == "linear":
        return (s0[0], a["weight"].shape[0])
    if op == "conv2d":
        n, c, h, w = s0
        k, _, kh, kw = a["weight"].shape
        sh, sw = a["stride"]
        ph, pw = a["padding"]
        return (n, k, (h + 2 * ph - kh) // sh + 1, (w + 2 * pw - kw) // sw + 1)
    if op == "winograd_conv2d":
        n = s0[0]
        k = a["out_channels"]
        rin = a.get("resident_src")
        if rin is not None:
            # Input is a tap tensor — (n, c, th, tw, t, t) on float
            # edges, (n, t, t, c, th, tw) on int8 edges; the producer's
            # rule stashed the spatial extents it encodes in the shared
            # residency dict (steps are processed in plan order, so the
            # producer always runs first).
            h, w = rin["plan_hw"]
        else:
            _, _, h, w = s0
        r, pad = a["r"], a["pad"]
        oh, ow = h + 2 * pad - r + 1, w + 2 * pad - r + 1
        if oh <= 0 or ow <= 0:
            from repro.engine.kernels import WinogradShapeError

            raise WinogradShapeError(
                f"winograd_conv2d output extent {oh}x{ow} is non-positive "
                f"for input {h}x{w} (r={r}, pad={pad}); the input is smaller "
                f"than the kernel's receptive field"
            )
        ro = a.get("resident_out")
        if ro is not None:
            # This step emits the *consumer's* tap tensor: run the
            # consumer's geometry on our spatial output and record the
            # spatial extents the tap encodes for the consumer's rule.
            m2, r2, t2, pad2 = ro["m"], ro["r"], ro["t"], ro["pad"]
            oh2, ow2 = oh + 2 * pad2 - r2 + 1, ow + 2 * pad2 - r2 + 1
            if oh2 <= 0 or ow2 <= 0:
                from repro.engine.kernels import WinogradShapeError

                raise WinogradShapeError(
                    f"winograd_conv2d output extent {oh2}x{ow2} is "
                    f"non-positive for input {oh}x{ow} (r={r2}, pad={pad2})"
                )
            th2, tw2 = -(-oh2 // m2), -(-ow2 // m2)
            ro["plan_hw"] = (oh, ow)
            if "i8" in ro:
                # int8 edges exchange the tap with the transform axes
                # ahead of the channel axis — the batched integer
                # Kronecker GEMM then writes the planned register
                # directly and the producer pays no relayout copy
                # (see _emit_resident_int8).
                return (n, t2, t2, k, th2, tw2)
            return (n, k, th2, tw2, t2, t2)
        return (n, k, oh, ow)
    return None


# ---------------------------------------------------------------------------
# Liveness → slot assignment
# ---------------------------------------------------------------------------


@dataclass
class MemoryLayout:
    """The static plan: which register lives in which arena slot."""

    #: per-slot capacity in float32 elements *per sample*
    slot_elems: List[int]
    #: register -> slot index (only registers with inferred shapes)
    reg_slot: Dict[int, int]
    #: register -> per-sample tail shape (shape without the batch axis)
    reg_tail: Dict[int, tuple]
    planned_registers: int = 0
    buffers_reused: int = 0

    @property
    def bytes_per_sample(self) -> int:
        return sum(self.slot_elems) * _ITEMSIZE

    def summary(self) -> dict:
        return {
            "planned_registers": self.planned_registers,
            "slots": len(self.slot_elems),
            "buffers_reused": self.buffers_reused,
            "arena_bytes_per_sample": self.bytes_per_sample,
        }


def plan_layout(steps, input_reg: int, output_reg: int, sample_shape) -> Optional[MemoryLayout]:
    """Build the slot assignment for one per-sample input shape.

    Returns ``None`` when any register's shape cannot be inferred — the
    executor then falls back to allocate-per-step.
    """
    shapes: Dict[int, Optional[tuple]] = {input_reg: (1,) + tuple(sample_shape)}
    for step in steps:
        ins = [shapes.get(r) for r in step.inputs]
        shapes[step.output] = infer_step_shape(step, ins)
    if any(shapes.get(step.output) is None for step in steps):
        return None

    # Alias classes: an op returning its input shares that memory.
    parent: Dict[int, int] = {}

    def find(reg: int) -> int:
        while reg in parent:
            reg = parent[reg]
        return reg

    for step in steps:
        if step.op in ALIAS_OPS:
            parent[step.output] = find(step.inputs[0])

    last_use: Dict[int, int] = {}
    for i, step in enumerate(steps):
        for reg in step.inputs:
            last_use[find(reg)] = i
        last_use.setdefault(find(step.output), i)
    out_root = find(output_reg)
    last_use[out_root] = len(steps)

    slot_elems: List[int] = []
    free: set = set()
    live: Dict[int, int] = {}
    record: Dict[int, int] = {}
    for i, step in enumerate(steps):
        root = find(step.output)
        if root != input_reg and root not in record:
            need = _prod(shapes[step.output][1:])
            fitting = [s for s in free if slot_elems[s] >= need]
            if fitting:
                slot = min(fitting, key=lambda s: slot_elems[s])
                free.discard(slot)
            elif free:
                slot = max(free, key=lambda s: slot_elems[s])
                free.discard(slot)
                slot_elems[slot] = need  # grow the largest reclaimed slot
            else:
                slot = len(slot_elems)
                slot_elems.append(need)
            live[root] = slot
            record[root] = slot
        for reg in set(step.inputs) | {step.output}:
            root = find(reg)
            if root != out_root and last_use.get(root) == i:
                slot = live.pop(root, None)
                if slot is not None:
                    free.add(slot)

    reg_slot: Dict[int, int] = {}
    reg_tail: Dict[int, tuple] = {}
    for step in steps:
        reg = step.output
        root = find(reg)
        if root in record:
            reg_slot[reg] = record[root]
            reg_tail[reg] = tuple(shapes[reg][1:])
    return MemoryLayout(
        slot_elems=slot_elems,
        reg_slot=reg_slot,
        reg_tail=reg_tail,
        planned_registers=len(reg_slot),
        buffers_reused=len(record) - len(slot_elems),
    )


# ---------------------------------------------------------------------------
# The arena: slot buffers + step-keyed scratch
# ---------------------------------------------------------------------------


class Arena:
    """One run's worth of workspaces (checked out per concurrent ``run``)."""

    def __init__(self, layout: MemoryLayout):
        self.layout = layout
        self._slots: List[Optional[np.ndarray]] = [None] * len(layout.slot_elems)
        self._scratch: Dict[tuple, np.ndarray] = {}
        self._buf_ids: set = set()
        self._regs: Dict[int, np.ndarray] = {}
        # Counter lock only: buffers themselves are race-free by keying
        # (scratch keys are lane-disjoint, slots are sized before lanes
        # start), but the counters are += from concurrent lanes.
        self._stats_lock = threading.Lock()
        self.alloc_events = 0  # lifetime buffer allocations/growths
        self.last_run_allocs = 0
        self.last_run_hits = 0
        self.shape_misses = 0

    # -- bookkeeping --------------------------------------------------------
    def _note_alloc(self) -> None:
        with self._stats_lock:
            self.alloc_events += 1
            self.last_run_allocs += 1

    def note_hit(self) -> None:
        with self._stats_lock:
            self.last_run_hits += 1

    def note_shape_miss(self) -> None:
        with self._stats_lock:
            self.shape_misses += 1

    def begin_run(self, n: int) -> None:
        """Size the register views for batch ``n`` (growing slots once)."""
        self.last_run_allocs = 0
        self.last_run_hits = 0
        layout = self.layout
        for slot, elems in enumerate(layout.slot_elems):
            need = n * elems
            buf = self._slots[slot]
            if buf is None or buf.size < need:
                if buf is not None:
                    self._buf_ids.discard(id(buf))
                buf = np.empty(need, dtype=np.float32)
                self._slots[slot] = buf
                self._buf_ids.add(id(buf))
                self._note_alloc()
        regs = {}
        for reg, slot in layout.reg_slot.items():
            tail = layout.reg_tail[reg]
            count = n * _prod(tail)
            regs[reg] = self._slots[slot][:count].reshape((n,) + tail)
        self._regs = regs

    def reg_view(self, reg: int) -> Optional[np.ndarray]:
        return self._regs.get(reg)

    def scratch(self, key: tuple, shape, dtype, zero: bool = False) -> np.ndarray:
        """A per-(step, tag, lane) workspace of at least ``shape``.

        Capacity-based: the flat backing buffer only grows.  ``zero``
        zero-fills on (re)allocation only — safe for the padded-input
        buffers because a step's pad borders sit at fixed per-sample
        offsets, and kernels fully overwrite the interior every call.
        """
        need = _prod(shape)
        buf = self._scratch.get(key)
        if buf is None or buf.dtype != np.dtype(dtype) or buf.size < need:
            if buf is not None:
                self._buf_ids.discard(id(buf))
            buf = np.zeros(need, dtype=dtype) if zero else np.empty(need, dtype=dtype)
            self._scratch[key] = buf
            self._buf_ids.add(id(buf))
            self._note_alloc()
        else:
            self.note_hit()
        return buf[:need].reshape(shape)

    def owns(self, arr) -> bool:
        """True when ``arr``'s memory ultimately belongs to this arena."""
        base = arr
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        return id(base) in self._buf_ids

    @property
    def nbytes(self) -> int:
        slots = sum(b.nbytes for b in self._slots if b is not None)
        return slots + sum(b.nbytes for b in self._scratch.values())

    @property
    def scratch_nbytes(self) -> int:
        return sum(b.nbytes for b in self._scratch.values())


#: Every live ArenaPool, so the after-fork guard below can reset them.
_ALL_POOLS: "weakref.WeakSet[ArenaPool]" = weakref.WeakSet()


def _reset_pools_after_fork() -> None:
    """Fork-safety guard: a forked child starts with **empty** pools.

    At fork time the parent may hold arenas checked out in other threads
    (the inference server's worker pool does), and the child's copies of
    those arenas — and of the idle list — share no synchronisation with
    the parent's ongoing runs.  Handing any inherited arena out in the
    child would couple it to parent-side bookkeeping frozen mid-flight
    (checkout counters, ``_retained`` membership, possibly a lock held
    at fork).  Dropping everything is cheap (buffers are rebuilt on
    first use) and makes "a forked child never inherits a checked-out
    arena slot" a property of the pool, not of caller discipline.
    """
    for pool in list(_ALL_POOLS):
        pool._reset_after_fork()


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


class ArenaPool:
    """Checkout/checkin of arenas for concurrent runs of one plan."""

    #: Arenas kept around for reuse; extra concurrent checkouts beyond
    #: this build fresh arenas that are dropped on checkin.
    MAX_POOLED = 32

    def __init__(self, layout: MemoryLayout):
        self.layout = layout
        self._lock = threading.Lock()
        self._idle: List[Arena] = []
        self._retained: List[Arena] = []  # idle + checked-out (see checkin)
        self.arenas_built = 0
        self.alloc_events = 0
        self.shape_misses = 0
        # Counters of the most recently *finished* run (recorded at
        # checkin, so a cold arena parked by a concurrency burst cannot
        # pin the steady-state numbers forever).
        self.last_run_allocs = 0
        self.last_run_hits = 0
        _ALL_POOLS.add(self)

    def _reset_after_fork(self) -> None:
        # Replace the lock outright: the parent's lock may have been
        # held by a thread that does not exist in the child.
        self._lock = threading.Lock()
        self._idle = []
        self._retained = []
        self.arenas_built = 0
        self.alloc_events = 0
        self.shape_misses = 0
        self.last_run_allocs = 0
        self.last_run_hits = 0

    def checkout(self) -> Arena:
        with self._lock:
            if self._idle:
                return self._idle.pop()
            arena = Arena(self.layout)
            self._retained.append(arena)
            self.arenas_built += 1
            return arena

    def checkin(self, arena: Arena) -> None:
        with self._lock:
            if arena not in self._retained:
                # A post-fork orphan (checked out before the fork reset
                # emptied the pool) or a burst-overflow arena: record
                # nothing and let its buffers die with the run.
                return
            self.last_run_allocs = arena.last_run_allocs
            self.last_run_hits = arena.last_run_hits
            self.alloc_events += arena.last_run_allocs
            self.shape_misses += arena.shape_misses
            arena.shape_misses = 0
            if len(self._idle) < self.MAX_POOLED:
                self._idle.append(arena)
            else:
                # Burst overflow: drop the arena entirely so its buffers
                # are reclaimed once the run's references die, instead of
                # keeping gigabytes resident that can never be reused.
                try:
                    self._retained.remove(arena)
                except ValueError:  # pragma: no cover — defensive
                    pass

    def stats(self) -> dict:
        with self._lock:
            arenas = list(self._retained)
            return {
                "arenas_built": self.arenas_built,
                "arena_bytes": sum(a.nbytes for a in arenas),
                "scratch_bytes": sum(a.scratch_nbytes for a in arenas),
                "alloc_events": self.alloc_events,
                "last_run_allocs": self.last_run_allocs,
                "last_run_reuse_hits": self.last_run_hits,
                "shape_misses": self.shape_misses,
            }


# ---------------------------------------------------------------------------
# The workspace context the kernels see
# ---------------------------------------------------------------------------


class _Scope:
    __slots__ = ("arena", "step", "lane", "out")

    def __init__(self, arena, step, lane, out):
        self.arena = arena
        self.step = step
        self.lane = lane
        self.out = out


_ws = threading.local()


def bind_step(arena: Optional[Arena], step: int, lane: int, out) -> Optional[_Scope]:
    """Enter a step scope (returns the previous scope for restoration)."""
    prev = getattr(_ws, "scope", None)
    _ws.scope = _Scope(arena, step, lane, out) if arena is not None else None
    return prev


def unbind_step(prev: Optional[_Scope]) -> None:
    _ws.scope = prev


def take_out(shape, dtype=np.float32) -> Optional[np.ndarray]:
    """The running step's planned output buffer, or ``None`` (the kernel
    then allocates — exactly NumPy's ``out=None`` behaviour)."""
    scope = getattr(_ws, "scope", None)
    if scope is None or scope.out is None:
        return None
    out = scope.out
    if out.shape == tuple(shape) and out.dtype == np.dtype(dtype):
        scope.arena.note_hit()
        return out
    scope.arena.note_shape_miss()
    return None


def take_scratch(tag: str, shape, dtype=np.float32, zero: bool = False) -> np.ndarray:
    """A kernel temporary: arena-backed inside a planned run, a fresh
    array (``np.zeros``/``np.empty``) everywhere else."""
    scope = getattr(_ws, "scope", None)
    if scope is None:
        return np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
    return scope.arena.scratch((scope.step, tag, scope.lane), shape, dtype, zero=zero)
