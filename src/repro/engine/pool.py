"""The shared worker pool behind the parallel step scheduler.

One process-wide thread pool serves every concurrent ``CompiledPlan.run``:
the engine's kernels spend their time inside BLAS GEMMs and NumPy ufunc
inner loops, both of which release the GIL, so plain threads give real
multicore parallelism without pickling arrays across processes (and the
arena buffers can be shared by reference).

Thread-count resolution, everywhere in the engine:

* an explicit ``threads=`` argument wins;
* else the per-plan ``CompiledPlan.threads`` attribute;
* else the ``REPRO_THREADS`` environment variable (``0`` or ``auto``
  mean "all cores");
* else ``1`` — serial, the exact pre-scheduler behaviour.

``run_tasks`` refuses to nest: a task that itself calls ``run_tasks``
(e.g. ``run_many(..., stack=False)`` whose per-input runs would also
like to split their steps) executes its sub-tasks inline, so the pool
can never deadlock on its own capacity.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

#: Environment variable controlling the default engine thread count.
THREADS_ENV_VAR = "REPRO_THREADS"

_lock = threading.Lock()
_executor: Optional[ThreadPoolExecutor] = None
_executor_size = 0
_default_threads: Optional[int] = None
_tls = threading.local()


def _reset_executor_after_fork() -> None:
    """Fork-safety guard: drop the inherited executor in a forked child.

    A forked child inherits the parent's ``ThreadPoolExecutor`` *object*
    but none of its worker threads — submitting to it would queue tasks
    nobody ever drains (the thread bookkeeping still lists the parent's
    dead threads, so no new workers are spawned) and the first threaded
    plan run in a worker process would deadlock.  Resetting the globals
    makes the child lazily build a fresh pool, exactly like a new
    process.
    """
    global _executor, _executor_size, _lock
    _lock = threading.Lock()  # the parent's lock may be held mid-fork
    _executor = None
    _executor_size = 0


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_reset_executor_after_fork)


def cpu_count() -> int:
    return os.cpu_count() or 1


def default_threads() -> int:
    """The process default: ``configure_threads`` > ``REPRO_THREADS`` > 1."""
    if _default_threads is not None:
        return _default_threads
    raw = os.environ.get(THREADS_ENV_VAR, "").strip().lower()
    if not raw:
        return 1
    if raw == "auto":
        return cpu_count()
    try:
        value = int(raw)
    except ValueError:
        return 1
    return cpu_count() if value == 0 else max(1, value)


def configure_threads(threads: Optional[int]) -> None:
    """Set (or with ``None`` clear) the process-wide default thread count,
    overriding ``REPRO_THREADS`` for every subsequent plan execution."""
    global _default_threads
    if threads is None:
        _default_threads = None
    else:
        _default_threads = cpu_count() if int(threads) == 0 else max(1, int(threads))


def resolve_threads(threads: Optional[int] = None) -> int:
    """An explicit request (``0`` = all cores) or the process default."""
    if threads is None:
        return default_threads()
    threads = int(threads)
    return cpu_count() if threads == 0 else max(1, threads)


def in_worker() -> bool:
    """True inside a pool task (used to keep parallelism un-nested)."""
    return bool(getattr(_tls, "active", False))


def _get_executor(threads: int) -> ThreadPoolExecutor:
    global _executor, _executor_size
    with _lock:
        if _executor is None or _executor_size < threads:
            old = _executor
            _executor_size = max(threads, cpu_count())
            _executor = ThreadPoolExecutor(
                max_workers=_executor_size, thread_name_prefix="repro-engine"
            )
            if old is not None:
                old.shutdown(wait=False)
        return _executor


def _run_wrapped(task: Callable[[], None]) -> None:
    _tls.active = True
    try:
        task()
    finally:
        _tls.active = False


def run_tasks(tasks: Sequence[Callable[[], None]], threads: int) -> None:
    """Execute zero-arg ``tasks`` on the shared pool and wait for all.

    Runs inline (serially) when there is one task, one thread, or the
    caller is itself a pool worker.  Every task is awaited even when one
    raises; the first exception is then re-raised.
    """
    if len(tasks) <= 1 or threads <= 1 or in_worker():
        for task in tasks:
            task()
        return
    # Submit one task at a time so a concurrent pool growth (the old
    # executor is shut down underneath us) only requires resubmitting the
    # tasks *not yet accepted* — tasks already queued on the old executor
    # still run there, and resubmitting them would double-execute a lane
    # against its own scratch buffers.
    executor = _get_executor(threads)
    futures = []
    index = 0
    while index < len(tasks):
        try:
            futures.append(executor.submit(_run_wrapped, tasks[index]))
            index += 1
        except RuntimeError:
            fresh = _get_executor(threads)
            if fresh is executor:  # not a growth race: fall back inline
                break
            executor = fresh
    # Every task must have finished before this returns OR raises — the
    # caller recycles shared state (the run's arena) right after — so
    # collect errors from the inline leg and the futures alike and only
    # re-raise once everything is drained.
    errors = []
    for task in tasks[index:]:
        try:
            task()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            errors.append(exc)
    for future in futures:
        try:
            future.result()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            errors.append(exc)
    if errors:
        raise errors[0]
