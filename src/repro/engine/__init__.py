"""Autograd-free inference engine.

Compiles a trained :class:`~repro.nn.module.Module` into a flat execution
plan of NumPy inference kernels:

* :mod:`repro.engine.registry` — the kernel registry, mapping op types to
  ``reference`` (bit-faithful to eager) and ``fast`` (optimised) backends;
* :mod:`repro.engine.compile` — the compile pass: walks the module tree,
  freezes parameters, precomputes and caches Winograd-transformed filters
  (``G g Gᵀ``) and quantized weights once per plan, and fuses
  Conv→BatchNorm→ReLU chains by folding BN into the weights;
* :mod:`repro.engine.plan` — the batched executor (`CompiledPlan`);
* :mod:`repro.engine.memplan` — the compile-time memory planner: shape
  inference over the register file, liveness-based arena slot reuse, and
  the per-run workspace arena behind zero-allocation steady state;
* :mod:`repro.engine.pool` — the shared worker pool and ``REPRO_THREADS``
  resolution behind the parallel step scheduler;
* :mod:`repro.engine.cache` — the LRU plan cache keyed by
  (architecture signature, input shape, quant config).

Typical use::

    from repro.engine import compile_model

    model.eval()
    plan = compile_model(model)          # backend="fast"
    logits = plan.run(batch)             # batch: np.ndarray, NCHW

The ``reference`` backend replays exactly the operation sequence of the
eager eval-mode forward (including every fake-quantization stage with
frozen observer ranges), so its outputs match eager bit-for-bit; the
``fast`` backend trades that for speed (folded BN, fused ReLU, strided
tile extraction, 1×1-conv shortcuts) and matches to float tolerance.
The ``int8`` backend (:mod:`repro.engine.int8`) executes quantized
layers natively on the integer codes of the fake-quant grids — integer
GEMMs with compile-time accumulator-bound proofs, fused requantization,
and integer handoffs between adjacent quantized layers — making
quantized inference faster than fp32 instead of slower.
"""

from repro.engine.cache import PlanCache, get_cached_plan, plan_cache
from repro.engine.compile import CompileError, compile_model
from repro.engine.memplan import MemoryLayout, plan_layout
from repro.engine.plan import CompiledPlan, Step
from repro.engine.pool import configure_threads, default_threads, resolve_threads
from repro.engine.registry import BACKENDS, KernelRegistry, register_kernel, registry
from repro.engine.timing import measure_callable_ms, measure_plan_ms

# Importing the kernels module registers every built-in kernel.
from repro.engine import kernels as _kernels  # noqa: F401  (registration side effect)

__all__ = [
    "BACKENDS",
    "CompileError",
    "CompiledPlan",
    "KernelRegistry",
    "MemoryLayout",
    "PlanCache",
    "Step",
    "compile_model",
    "configure_threads",
    "default_threads",
    "get_cached_plan",
    "measure_callable_ms",
    "measure_plan_ms",
    "plan_cache",
    "plan_layout",
    "register_kernel",
    "registry",
    "resolve_threads",
]
