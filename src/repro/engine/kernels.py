"""Built-in inference kernels.

Two backends per op where it matters:

* ``reference`` kernels replay the eager eval-mode forward operation for
  operation — same NumPy calls, same order, same intermediate layouts —
  so outputs are bit-identical to the autograd path (including every
  fake-quantization stage, using the observer ranges frozen at compile
  time);
* ``fast`` kernels compute the same function with deployment-oriented
  shortcuts: pre-folded BatchNorm, fused ReLU/bias epilogues, zero-copy
  strided tile extraction, a dedicated 1×1-convolution GEMM, and cached
  (pre-transformed, pre-laid-out) Winograd filters.

Kernel signature: ``kernel(inputs, attrs) -> np.ndarray``.  ``attrs`` is
the step's frozen attribute dict; quantization stages appear as
``q_<stage>`` entries of the form ``{"scale": s, "qmax": q}`` (frozen
observer) or ``{"dynamic_bits": b}`` (uncalibrated observer: range taken
from the batch, mirroring the eager fallback), or ``None`` when disabled.

Memory discipline (``fast``/``turbo``/``int8`` only — the ``reference``
kernels keep their original allocation pattern as the fidelity oracle):
every hot kernel asks the executor's per-run arena for its buffers —
:func:`~repro.engine.memplan.take_out` for the step's planned output
register, :func:`~repro.engine.memplan.take_scratch` for temporaries
(im2row row buffers, padded inputs, Winograd tile/transform-domain
intermediates, quantization code buffers).  Outside a planned execution
both helpers degrade to plain NumPy allocation, so calling a kernel
directly behaves exactly as before.  A kernel may mutate only arrays it
obtained this way (or fresh GEMM outputs) — never an input register.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.engine.int8 import prepare_runtime, stages_cold
from repro.engine.memplan import take_out, take_scratch
from repro.engine.registry import register_kernel
from repro.quant.quantizer import quantization_scale


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _stage_scale(q: Dict) -> float:
    """A frozen stage's scale, guarding degenerate ranges.

    A scale of zero (or non-finite) can only come from a degenerate
    observation like an all-zero calibration batch; fall back to the
    same harmless ``1/qmax`` default :func:`quantization_scale` uses
    rather than divide by it.
    """
    scale = q["scale"]
    if not (scale > 0.0 and np.isfinite(scale)):
        return 1.0 / q["qmax"]
    return scale


def fake_quant(x: np.ndarray, q: Optional[Dict], out: Optional[np.ndarray] = None) -> np.ndarray:
    """Apply one frozen fake-quantization stage (mirrors ``FakeQuant``).

    A stage compiled from an unwarmed activation observer starts as
    ``{"dynamic_bits": b}``; like eager's eval-before-observation
    fallback it takes the range from the first batch it sees — and then
    freezes it into the stage dict, exactly as eager's observer
    initialises once and keeps that range for every later batch.  (The
    plan's frozen copy does not write back to the model's observer
    buffers; recompile after calibrating the model to pick them up.)

    ``out`` may be a caller-owned buffer (it may alias ``x`` when the
    caller owns ``x`` too): the same elementwise operations land there
    instead of a fresh array, with identical values.
    """
    if q is None:
        return x
    if "scale" in q:
        scale, qmax = _stage_scale(q), q["qmax"]
    else:
        bits = q["dynamic_bits"]
        qmax = float(2 ** (bits - 1) - 1)
        batch_max = float(np.abs(x).max()) if x.size else 0.0
        # quantization_scale guards batch_max <= 0 (all-zero calibration
        # batch) by returning 1/qmax, so the divide below is always safe.
        scale = quantization_scale(batch_max, bits)
        q["scale"], q["qmax"] = scale, qmax  # freeze, mirroring the observer
    if out is not None and out.dtype != x.dtype:
        out = None
    # One buffer, then in-place: same elementwise operations (and the
    # same roundings) as rint(x / scale) -> clip -> * scale -> astype.
    r = np.divide(x, scale, out=out)
    np.rint(r, out=r)
    np.clip(r, -qmax, qmax, out=r)
    r *= scale
    return r if r.dtype == x.dtype else r.astype(x.dtype)


def _fq_scratch(x: np.ndarray, q: Optional[Dict], tag: str) -> np.ndarray:
    """Kernel-prologue fake-quant into step scratch (input registers must
    never be mutated, so the quantized copy gets its own workspace)."""
    if q is None:
        return x
    return fake_quant(x, q, out=take_scratch(tag, x.shape, x.dtype))


def _strided_patches(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """(N, C, nH, nW, kh, kw) sliding-window *view* (no copy)."""
    n, c, h, w = x.shape
    nh = (h - kh) // sh + 1
    nw = (w - kw) // sw + 1
    sn, sc, shh, sww = x.strides
    return np.lib.stride_tricks.as_strided(
        x, shape=(n, c, nh, nw, kh, kw), strides=(sn, sc, shh * sh, sww * sw, shh, sww)
    )


def _padded_scratch(x: np.ndarray, ph: int, pw: int, tag: str = "xp") -> np.ndarray:
    """Zero-padded copy of ``x`` in step scratch (same values as
    ``np.pad``; the pad borders are zeroed once at buffer allocation and
    stay zero because only the interior is ever written)."""
    n, c, h, w = x.shape
    xp = take_scratch(tag, (n, c, h + 2 * ph, w + 2 * pw), np.float32, zero=True)
    xp[:, :, ph : ph + h, pw : pw + w] = x
    return xp


def _epilogue(y: np.ndarray, attrs: Dict, k: int, quantize_output: bool = True) -> np.ndarray:
    """Fast-path conv epilogue: bias, output quant, fused ReLU — in place.

    ``y`` is always owned by the calling kernel (a fresh GEMM output or
    this step's scratch), never a register another step still reads, so
    the epilogue composes in place with values identical to the old
    allocate-per-stage form.  Folded BN lives entirely in the step's
    weights/bias by the time the kernel runs (see ``_fold_bn``), so no
    affine remains here.  The Winograd kernel quantizes its output
    *before* the bias (matching the eager pipeline order) and passes
    ``quantize_output=False``; the standard conv quantizes after the
    bias, matching ``QuantConv2d``.
    """
    bias = attrs.get("bias")
    if bias is not None:
        y += bias.reshape(1, k, 1, 1)
    if quantize_output:
        y = fake_quant(y, attrs.get("q_output"), out=y)
    if attrs.get("fuse_relu"):
        np.maximum(y, 0.0, out=y)
    return y


# ---------------------------------------------------------------------------
# Elementwise / shape ops
# ---------------------------------------------------------------------------


@register_kernel("relu")
def relu_kernel(inputs, attrs):
    """Single-pass ReLU, bit-equal to eager's ``where(x > 0, x, 0.0)``
    for every finite input (including ``-0.0 → 0.0``) without the mask
    allocation and second pass.  (The one divergence is non-finite
    garbage: eager maps NaN to 0.0 where ``maximum`` propagates it —
    arguably the more honest answer, and unreachable from the finite
    activations every model here produces.)"""
    (x,) = inputs
    return np.maximum(x, 0.0)


@register_kernel("relu", "fast")
def relu_fast(inputs, attrs):
    (x,) = inputs
    return np.maximum(x, 0.0, out=take_out(x.shape, x.dtype))


@register_kernel("add")
def add_kernel(inputs, attrs):
    a, b = inputs
    y = a + b
    if attrs.get("fuse_relu"):
        y = np.maximum(y, 0.0)
    return y


@register_kernel("add", "fast")
def add_fast(inputs, attrs):
    a, b = inputs
    y = np.add(a, b, out=take_out(a.shape, a.dtype))
    if attrs.get("fuse_relu"):
        np.maximum(y, 0.0, out=y)
    return y


@register_kernel("concat")
def concat_kernel(inputs, attrs):
    return np.concatenate(inputs, axis=attrs.get("axis", 1))


@register_kernel("concat", "fast")
def concat_fast(inputs, attrs):
    axis = attrs.get("axis", 1)
    shape = list(inputs[0].shape)
    shape[axis] = sum(a.shape[axis] for a in inputs)
    out = take_out(tuple(shape), inputs[0].dtype)
    if out is None:
        return np.concatenate(inputs, axis=axis)
    np.concatenate(inputs, axis=axis, out=out)
    return out


@register_kernel("flatten")
def flatten_kernel(inputs, attrs):
    (x,) = inputs
    return x.reshape(x.shape[0], int(np.prod(x.shape[1:])))


@register_kernel("record_hw")
def record_hw_kernel(inputs, attrs):
    """Record the incoming spatial shape on the source module.

    This keeps ``repro.hardware`` consumers (the latency table) working
    when a model is probed through a compiled plan instead of an eager
    forward: the plan writes ``last_input_hw`` exactly like the eager
    layers do.
    """
    (x,) = inputs
    for module in attrs["modules"]:
        module.last_input_hw = (x.shape[2], x.shape[3])
    return x


@register_kernel("eager_module")
def eager_module_kernel(inputs, attrs):
    """Fallback for module types with no lowering rule: call eager forward."""
    from repro.autograd.function import no_grad
    from repro.autograd.tensor import Tensor

    (x,) = inputs
    with no_grad():
        out = attrs["module"](Tensor(x))
    return out.data


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


@register_kernel("max_pool")
def max_pool_kernel(inputs, attrs):
    (x,) = inputs
    kh, kw = attrs["kernel"]
    sh, sw = attrs["stride"]
    # Mirror eager F.max_pool2d op for op, *including* the contiguous
    # patch materialisation: the max itself is order-insensitive, but the
    # output layout steers the summation order of whatever reduction
    # consumes it next (the differential fuzz corpus caught a GAP head
    # diverging by one ulp when this kernel reduced a strided view and
    # returned a K-order array where eager returns C order).
    patches = np.ascontiguousarray(_strided_patches(x, kh, kw, sh, sw))
    n, c, oh, ow = patches.shape[:4]
    return patches.reshape(n, c, oh, ow, kh * kw).max(axis=4)


@register_kernel("max_pool", "fast")
def max_pool_fast(inputs, attrs):
    """Window max as kh·kw strided-slice maximums (bit-equal to reference:
    max is exactly associative, only the reduction order differs)."""
    (x,) = inputs
    kh, kw = attrs["kernel"]
    sh, sw = attrs["stride"]
    n, c, h, w = x.shape
    nh = (h - kh) // sh + 1
    nw = (w - kw) // sw + 1
    out = take_out((n, c, nh, nw), x.dtype)
    first = True
    for i in range(kh):
        for j in range(kw):
            window = x[:, :, i : i + sh * nh : sh, j : j + sw * nw : sw]
            if first:
                if out is None:
                    out = np.ascontiguousarray(window)
                else:
                    np.copyto(out, window)
                first = False
            else:
                np.maximum(out, window, out=out)
    return out


@register_kernel("avg_pool")
def avg_pool_kernel(inputs, attrs):
    (x,) = inputs
    kh, kw = attrs["kernel"]
    sh, sw = attrs["stride"]
    # Mirror eager F.avg_pool2d op for op: materialise the patches
    # contiguously (extract_patches does) and reduce the *flattened*
    # window axis — summing the strided (kh, kw) view over two axes
    # walks the addends in a different order and can differ by one ulp
    # on adversarial data (caught by the differential fuzz corpus).
    patches = np.ascontiguousarray(_strided_patches(x, kh, kw, sh, sw))
    n, c, oh, ow = patches.shape[:4]
    flat = patches.reshape(n, c, oh, ow, kh * kw)
    return flat.sum(axis=4) * np.float32(1.0 / (kh * kw))


@register_kernel("avg_pool", "fast")
def avg_pool_fast(inputs, attrs):
    (x,) = inputs
    kh, kw = attrs["kernel"]
    sh, sw = attrs["stride"]
    patches = _strided_patches(x, kh, kw, sh, sw)
    out = np.sum(patches, axis=(4, 5), out=take_out(patches.shape[:4], x.dtype))
    out *= np.float32(1.0 / (kh * kw))
    return out


@register_kernel("global_avg_pool")
def global_avg_pool_kernel(inputs, attrs):
    (x,) = inputs
    count = x.shape[2] * x.shape[3]
    return x.sum(axis=(2, 3)) * np.float32(1.0 / count)


@register_kernel("global_avg_pool", "fast")
def global_avg_pool_fast(inputs, attrs):
    (x,) = inputs
    count = x.shape[2] * x.shape[3]
    out = np.sum(x, axis=(2, 3), out=take_out((x.shape[0], x.shape[1]), x.dtype))
    out *= np.float32(1.0 / count)
    return out


# ---------------------------------------------------------------------------
# BatchNorm (inference affine)
# ---------------------------------------------------------------------------


@register_kernel("affine")
def affine_kernel(inputs, attrs):
    """Eval-mode BatchNorm, mirroring ``F.batch_norm2d`` op for op."""
    (x,) = inputs
    c = x.shape[1]
    mean = attrs["mean"].reshape(1, c, 1, 1)
    inv_std = attrs["inv_std"].reshape(1, c, 1, 1)
    gamma = attrs["gamma"].reshape(1, c, 1, 1)
    beta = attrs["beta"].reshape(1, c, 1, 1)
    y = ((x - mean) * inv_std) * gamma + beta
    if attrs.get("fuse_relu"):
        y = np.maximum(y, 0.0)
    return y


@register_kernel("affine", "fast")
def affine_fast(inputs, attrs):
    (x,) = inputs
    c = x.shape[1]
    y = np.multiply(x, attrs["scale"].reshape(1, c, 1, 1), out=take_out(x.shape, x.dtype))
    y += attrs["shift"].reshape(1, c, 1, 1)
    if attrs.get("fuse_relu"):
        np.maximum(y, 0.0, out=y)
    return y


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------


@register_kernel("linear")
def linear_kernel(inputs, attrs):
    (x,) = inputs
    x = fake_quant(x, attrs.get("q_input"))
    out = np.matmul(x, attrs["weight"].transpose())
    bias = attrs.get("bias")
    if bias is not None:
        out = out + bias
    out = fake_quant(out, attrs.get("q_output"))
    if attrs.get("fuse_relu"):
        out = np.maximum(out, 0.0)
    return out


@register_kernel("linear", "fast")
def linear_fast(inputs, attrs):
    (x,) = inputs
    x = _fq_scratch(x, attrs.get("q_input"), "qx")
    weight = attrs["weight"]
    out = np.matmul(
        x, weight.transpose(), out=take_out((x.shape[0], weight.shape[0]), x.dtype)
    )
    bias = attrs.get("bias")
    if bias is not None:
        out += bias
    out = fake_quant(out, attrs.get("q_output"), out=out)
    if attrs.get("fuse_relu"):
        np.maximum(out, 0.0, out=out)
    return out


# ---------------------------------------------------------------------------
# Standard convolution (im2row GEMM)
# ---------------------------------------------------------------------------


@register_kernel("conv2d")
def conv2d_reference(inputs, attrs):
    """Bit-faithful mirror of ``F.conv2d_im2row`` (plus quant stages)."""
    (x,) = inputs
    weight = attrs["weight"]
    bias = attrs.get("bias")
    sh, sw = attrs["stride"]
    ph, pw = attrs["padding"]
    groups = attrs["groups"]
    x = fake_quant(x, attrs.get("q_input"))
    n, c, h, w = x.shape
    k, cg, kh, kw = weight.shape
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    patches = np.ascontiguousarray(_strided_patches(xp, kh, kw, sh, sw))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if groups == 1:
        rows = np.transpose(patches, (0, 2, 3, 1, 4, 5)).reshape(n * oh * ow, c * kh * kw)
        wmat = weight.reshape(k, c * kh * kw).transpose()
        out = np.transpose(np.matmul(rows, wmat).reshape(n, oh, ow, k), (0, 3, 1, 2))
    else:
        g = groups
        rows = np.transpose(
            patches.reshape(n, g, c // g, oh, ow, kh, kw), (1, 0, 3, 4, 2, 5, 6)
        ).reshape(g, n * oh * ow, (c // g) * kh * kw)
        wmat = np.transpose(weight.reshape(g, k // g, (c // g) * kh * kw), (0, 2, 1))
        out = np.transpose(
            np.matmul(rows, wmat).reshape(g, n, oh, ow, k // g), (1, 0, 4, 2, 3)
        ).reshape(n, k, oh, ow)
    if bias is not None:
        out = out + bias.reshape(1, k, 1, 1)
    out = fake_quant(out, attrs.get("q_output"))
    if attrs.get("fuse_relu"):
        out = np.maximum(out, 0.0)
    return out


@register_kernel("conv2d", "fast")
def conv2d_fast(inputs, attrs):
    """im2row GEMM with a 1×1 shortcut and fused epilogue.

    ``attrs["weight"]`` may already carry folded BatchNorm scales; any
    remaining affine lives in ``attrs["scale"]/["shift"]`` (quantized
    convs keep BN separate to preserve the quantization grid).  All
    temporaries (quantized input, padded input, im2row rows, GEMM
    output) live in step scratch.
    """
    (x,) = inputs
    weight = attrs["weight"]
    sh, sw = attrs["stride"]
    ph, pw = attrs["padding"]
    groups = attrs["groups"]
    x = _fq_scratch(x, attrs.get("q_input"), "qx")
    n, c, h, w = x.shape
    k, cg, kh, kw = weight.shape

    if kh == 1 and kw == 1 and (sh, sw) == (1, 1) and (ph, pw) == (0, 0) and groups == 1:
        # 1×1 convolution is a plain channel GEMM: (K, C) @ (C, H·W).
        wmat = attrs["wmat"]  # (K, C), contiguous, precomputed
        out = np.matmul(
            wmat[None],
            x.reshape(n, c, h * w),
            out=take_scratch("gemm", (n, k, h * w), x.dtype),
        )
        return _epilogue(out.reshape(n, k, h, w), attrs, k)

    xp = _padded_scratch(x, ph, pw) if (ph or pw) else x
    patches = _strided_patches(xp, kh, kw, sh, sw)
    oh, ow = patches.shape[2], patches.shape[3]
    if groups == 1:
        rows = take_scratch("rows", (n * oh * ow, c * kh * kw), x.dtype)
        rows.reshape(n, oh, ow, c, kh, kw)[...] = np.transpose(
            patches, (0, 2, 3, 1, 4, 5)
        )
        gemm = np.matmul(
            rows, attrs["wmat"], out=take_scratch("gemm", (n * oh * ow, k), x.dtype)
        )
        out = np.transpose(gemm.reshape(n, oh, ow, k), (0, 3, 1, 2))
    else:
        g = groups
        rows = take_scratch("rows", (g, n * oh * ow, (c // g) * kh * kw), x.dtype)
        rows.reshape(g, n, oh, ow, c // g, kh, kw)[...] = np.transpose(
            patches.reshape(n, g, c // g, oh, ow, kh, kw), (1, 0, 3, 4, 2, 5, 6)
        )
        gemm = np.matmul(
            rows,
            attrs["wmat"],
            out=take_scratch("gemm", (g, n * oh * ow, k // g), x.dtype),
        )
        out = take_scratch("y", (n, k, oh, ow), x.dtype)
        out.reshape(n, g, k // g, oh, ow)[...] = np.transpose(
            gemm.reshape(g, n, oh, ow, k // g), (1, 0, 4, 2, 3)
        )
    return _epilogue(out, attrs, k)


# ---------------------------------------------------------------------------
# Winograd convolution with cached filter transforms
# ---------------------------------------------------------------------------


class WinogradShapeError(ValueError):
    """A Winograd convolution whose output extent is non-positive.

    ``h + 2·pad < r`` used to slip through as ``th = 0`` — zero tiles,
    an empty output tensor, and a confusing failure several steps
    downstream.  The planner (:func:`repro.engine.memplan.infer_step_shape`)
    raises this at plan-build time, and the kernels raise it as a
    run-time backstop for unplanned executions.
    """


def _winograd_geometry(h, w, m, r, pad):
    out_h = h + 2 * pad - r + 1
    out_w = w + 2 * pad - r + 1
    if out_h <= 0 or out_w <= 0:
        raise WinogradShapeError(
            f"winograd_conv2d output extent {out_h}x{out_w} is non-positive "
            f"for input {h}x{w} (r={r}, pad={pad}); the input is smaller "
            f"than the kernel's receptive field"
        )
    th = -(-out_h // m)
    tw = -(-out_w // m)
    return out_h, out_w, th, tw


# -- transform-domain residency ---------------------------------------------
#
# A resident edge (see repro.engine.compile._plan_residency) hands the
# consumer a (N, C, th, tw, t, t) tap tensor instead of a spatial
# activation: the producer runs the consumer's input stages + forward
# tile transform as its epilogue tail, and the consumer skips its whole
# prologue.  The tap register's shape no longer determines the spatial
# extent (th·m ≥ out_h), so the producer stashes the consumer's input
# (h, w) here, keyed by the identity of the shared residency dict.
# Resident steps are excluded from batch chunking (see plan.py), so the
# producer and consumer of one edge always execute sequentially on the
# run's calling thread — the stash is thread-local and each entry is
# written by the producer immediately before the consumer pops it.  A
# producer re-run after a failed run simply overwrites its entry.

_resident_hw = threading.local()


def _stash_resident_hw(ro: Dict, hw: Tuple[int, int]) -> None:
    stash = getattr(_resident_hw, "map", None)
    if stash is None:
        stash = _resident_hw.map = {}
    stash[id(ro)] = hw


def _pop_resident_hw(ro: Dict) -> Tuple[int, int]:
    return _resident_hw.map.pop(id(ro))


@register_kernel("winograd_conv2d")
def winograd_reference(inputs, attrs):
    """Bit-faithful mirror of ``WinogradConv2d.forward`` in eval mode.

    The filter transform ``U = Qwt(G · Qw(g) · Gᵀ)`` was computed once at
    compile time (``attrs["u"]``) — identical values to what the eager
    layer recomputes every forward.
    """
    (x,) = inputs
    u = attrs["u"]  # (K, C/g, t, t)
    BT, AT = attrs["BT"], attrs["AT"]
    bias = attrs.get("bias")
    m, r, t, g = attrs["m"], attrs["r"], attrs["t"], attrs["groups"]
    k, pad = attrs["out_channels"], attrs["pad"]

    x = fake_quant(x, attrs.get("q_input"))
    n, c, h, w = x.shape
    out_h, out_w, th, tw = _winograd_geometry(h, w, m, r, pad)

    need_h = th * m + r - 1
    need_w = tw * m + r - 1
    if pad == 0 and need_h == h and need_w == w:
        xp = x  # tiles already cover the input exactly: no pad, no copy
    else:
        xp = np.pad(
            x, ((0, 0), (0, 0), (pad, need_h - h - pad), (pad, need_w - w - pad))
        )
    tiles = np.ascontiguousarray(_strided_patches(xp, t, t, m, m))
    v = np.matmul(np.matmul(BT, tiles), BT.transpose())
    v = fake_quant(v, attrs.get("q_input_t"))

    p = n * th * tw
    u2 = np.transpose(u.reshape(g, k // g, c // g, t, t), (3, 4, 0, 1, 2))
    v2 = np.transpose(
        v.reshape(n, g, c // g, th, tw, t, t), (5, 6, 1, 2, 0, 3, 4)
    ).reshape(t, t, g, c // g, p)
    had = np.matmul(u2, v2)  # (t, t, g, K/g, P)
    had = fake_quant(had, attrs.get("q_hadamard"))

    y = np.transpose(had.reshape(t, t, k, p), (2, 3, 0, 1))
    y = np.matmul(np.matmul(AT, y), AT.transpose())  # (K, P, m, m)
    y = fake_quant(y, attrs.get("q_output"))

    y = np.transpose(y.reshape(k, n, th, tw, m, m), (1, 0, 2, 4, 3, 5)).reshape(
        n, k, th * m, tw * m
    )
    if th * m != out_h:
        y = y[:, :, :out_h, :]
    if tw * m != out_w:
        y = y[:, :, :, :out_w]
    if bias is not None:
        y = y + bias.reshape(1, k, 1, 1)
    if attrs.get("fuse_relu"):
        y = np.maximum(y, 0.0)
    return y


@register_kernel("winograd_conv2d", "fast")
def winograd_fast(inputs, attrs):
    """Deployment Winograd path: Kronecker tile transforms + batched GEMMs.

    ``Bᵀ d B`` over a t×t tile is linear in the flattened tile, so the
    input transform for *all* N·C·th·tw tiles of the batch is one
    ``(N·C·th·tw, t²) × (t², t²)`` GEMM against the cached Kronecker
    matrix ``kron(Bᵀ, Bᵀ)ᵀ`` (``attrs["btk"]``), and likewise the output
    transform against ``kron(Aᵀ, Aᵀ)ᵀ``.  The Hadamard stage is t² GEMMs
    of (K/g × C/g)·(C/g × P) per group.  GEMM row counts scale with the
    batch, so per-sample cost *drops* as the dynamic batcher coalesces
    requests — deep layers (few tiles per sample) amortise hardest.
    Bias / folded BN / fused ReLU are applied in a single epilogue.
    Every intermediate (padded input, tile matrix, transform domains,
    NCHW assembly) lives in step scratch.
    """
    (x,) = inputs
    u2 = attrs["u2"]  # (t, t, g, K/g, C/g), contiguous, cached at compile
    btk, atk = attrs.get("btk"), attrs.get("atk")  # (t², t²), (t², m²)
    m, r, t, g = attrs["m"], attrs["r"], attrs["t"], attrs["groups"]
    k, pad = attrs["out_channels"], attrs["pad"]

    rin = attrs.get("resident_src")
    if rin is not None:
        # The input arrives resident in the transform domain: a
        # (N, C, th, tw, t, t) tap tensor whose values already passed this
        # step's q_input / q_input_t stages in the producer's epilogue
        # tail — the whole prologue (quantize, pad, tile, Bᵀ transform)
        # is skipped.  The logical layout matches the btk path's ``v``
        # exactly, so the Hadamard repack below is the identical copy.
        n, c, th, tw = x.shape[:4]
        h, w = _pop_resident_hw(rin)
        out_h, out_w = h + 2 * pad - r + 1, w + 2 * pad - r + 1
        tt, p = t * t, n * th * tw
        v2 = take_scratch("v2", (t, t, g, c // g, p), x.dtype)
        v2.reshape(tt, g, c // g, n, th * tw)[...] = np.transpose(
            x.reshape(n, g, c // g, th * tw, tt), (4, 1, 2, 0, 3)
        )
    else:
        x = _fq_scratch(x, attrs.get("q_input"), "qx")
        n, c, h, w = x.shape
        out_h, out_w, th, tw = _winograd_geometry(h, w, m, r, pad)
        tt, p = t * t, n * th * tw

        need_h = th * m + r - 1
        need_w = tw * m + r - 1
        if pad == 0 and need_h == h and need_w == w:
            xp = x  # tiles already cover the input exactly: no pad copy
        else:
            xp = take_scratch("xp", (n, c, need_h, need_w), np.float32, zero=True)
            xp[:, :, pad : pad + h, pad : pad + w] = x
        tiles = _strided_patches(xp, t, t, m, m)  # view, no copy
        if btk is None:  # large tiles: nested two-stage transform (precision)
            BT = attrs["BT"]
            v = np.matmul(np.matmul(BT, tiles), BT.transpose())
            v = fake_quant(v, attrs.get("q_input_t"), out=v)
            v2 = take_scratch("v2", (t, t, g, c // g, p), v.dtype)
            v2.reshape(t, t, g, c // g, n, th * tw)[...] = np.transpose(
                v.reshape(n, g, c // g, th, tw, t, t), (5, 6, 1, 2, 0, 3, 4)
            ).reshape(t, t, g, c // g, n, th * tw)
        else:
            tmat = take_scratch("tiles", (n * c * th * tw, tt), x.dtype)
            tmat.reshape(n, c, th, tw, t, t)[...] = tiles
            v = np.matmul(
                tmat, btk, out=take_scratch("v", (n * c * th * tw, tt), x.dtype)
            )
            v = fake_quant(v, attrs.get("q_input_t"), out=v)
            v2 = take_scratch("v2", (t, t, g, c // g, p), v.dtype)
            v2.reshape(tt, g, c // g, n, th * tw)[...] = np.transpose(
                v.reshape(n, g, c // g, th * tw, tt), (4, 1, 2, 0, 3)
            )
    had = np.matmul(
        u2, v2, out=take_scratch("had", (t, t, g, k // g, p), v2.dtype)
    )  # (t, t, g, K/g, P)
    had = fake_quant(had, attrs.get("q_hadamard"), out=had)

    if atk is None:
        AT = attrs["AT"]
        y = np.transpose(had.reshape(t, t, k, p), (2, 3, 0, 1))
        y = np.matmul(np.matmul(AT, y), AT.transpose())  # (K, P, m, m)
    else:
        hadT = take_scratch("hadT", (k * p, tt), had.dtype)
        hadT[...] = np.transpose(had.reshape(tt, k * p), (1, 0))
        y = np.matmul(hadT, atk, out=take_scratch("ymat", (k * p, m * m), had.dtype))
    y = fake_quant(y, attrs.get("q_output"), out=y)

    ro = attrs.get("resident_out")
    if ro is not None:
        return _emit_resident_fast(y, attrs, ro, n, k, th, tw, out_h, out_w)
    yout = take_scratch("y", (n, k, th * m, tw * m), np.float32)
    yout.reshape(n, k, th, m, tw, m)[...] = np.transpose(
        y.reshape(k, n, th, tw, m, m), (1, 0, 2, 4, 3, 5)
    )
    y = yout
    if th * m != out_h or tw * m != out_w:
        y = y[:, :, :out_h, :out_w]
    y = _epilogue(y, attrs, k, quantize_output=False)
    return y


def _emit_resident_fast(
    y: np.ndarray, attrs: Dict, ro: Dict, n: int, k: int,
    pth: int, ptw: int, h: int, w: int,
) -> np.ndarray:
    """Producer tail of a float resident edge, fused with the epilogue.

    ``y`` is the raw inverse-transform GEMM output, still in the
    (K·P, m²) layout and already through the ``q_output`` stage.  Bias
    and fused ReLU are elementwise, so they apply here — in GEMM layout,
    identical values — and the spatial assembly then lands in a single
    transpose copy **directly inside the consumer's padded buffer**,
    whose border is the only part that needs zeroing.  From there the
    consumer's remaining input stages and forward tile transform run
    unchanged, and the resulting (N, C, th, tw, t, t) tap tensor goes
    straight into this step's planned register.  Versus the round-trip
    schedule this elides the spatial register exchange, the separate
    spatial assembly buffer, and the full-frame zero fill — all pure
    copy routing; every arithmetic op runs in the same order on the
    same values, so bit-identity is preserved.
    """
    pm = attrs["m"]
    m, r, t, pad = ro["m"], ro["r"], ro["t"], ro["pad"]
    _, _, th, tw = _winograd_geometry(h, w, m, r, pad)
    tt = t * t
    need_h, need_w = th * m + r - 1, tw * m + r - 1

    ymat = y.reshape(k, n * pth * ptw, pm, pm)
    bias = attrs.get("bias")
    if bias is not None:
        ymat += bias.reshape(k, 1, 1, 1)
    if attrs.get("fuse_relu"):
        np.maximum(ymat, 0.0, out=ymat)
    src6 = ymat.reshape(k, n, pth, ptw, pm, pm)

    xp = take_scratch("r_xp", (n, k, need_h, need_w), np.float32)
    if pad or need_h != h or need_w != w:
        xp[:, :, :pad] = 0.0
        xp[:, :, pad + h :] = 0.0
        xp[:, :, :, :pad] = 0.0
        xp[:, :, :, pad + w :] = 0.0
    interior = xp[:, :, pad : pad + h, pad : pad + w]
    if pth * pm == h and ptw * pm == w:
        # Exact tiling: the strided interior view splits into the
        # (N, K, th, m, tw, m) tile grid (as_strided guarantees a view,
        # never a silent copy), so the transpose assignment below is the
        # *only* spatial pass.
        s = interior.strides
        grid = np.lib.stride_tricks.as_strided(
            interior,
            (n, k, pth, pm, ptw, pm),
            (s[0], s[1], s[2] * pm, s[2], s[3] * pm, s[3]),
        )
        grid[...] = np.transpose(src6, (1, 0, 2, 4, 3, 5))
    else:
        yout = take_scratch("y", (n, k, pth * pm, ptw * pm), np.float32)
        yout.reshape(n, k, pth, pm, ptw, pm)[...] = np.transpose(
            src6, (1, 0, 2, 4, 3, 5)
        )
        interior[...] = yout[:, :, :h, :w]
    if ro.get("q_input") is not None:
        fake_quant(interior, ro["q_input"], out=interior)

    tmat = take_scratch("r_tiles", (n * k * th * tw, tt), np.float32)
    tmat.reshape(n, k, th, tw, t, t)[...] = _strided_patches(xp, t, t, m, m)
    out = take_out((n, k, th, tw, t, t), np.float32)
    vbuf = (
        out.reshape(n * k * th * tw, tt)
        if out is not None
        else np.empty((n * k * th * tw, tt), np.float32)
    )
    v = np.matmul(tmat, ro["btk"], out=vbuf)
    fake_quant(v, ro.get("q_input_t"), out=v)
    _stash_resident_hw(ro, (h, w))
    return out if out is not None else v.reshape(n, k, th, tw, t, t)


# ---------------------------------------------------------------------------
# Native integer-arithmetic kernels (the ``int8`` backend)
# ---------------------------------------------------------------------------
#
# Quantized layers execute on the integer *codes* of the fake-quant grids
# (see repro.engine.int8 for the compile-side preparation and the
# exactness argument).  Every GEMM here runs over integer-valued float
# arrays whose partial sums were proven, at compile time, to stay below
# the dtype's mantissa bound — so the float GEMM is exact at any BLAS
# blocking, and reassociation-friendly layouts (the transform output is
# produced directly in the Hadamard layout; the output transform
# consumes the Hadamard layout directly) are safe in a way they are not
# for the float ``fast``/``turbo`` paths.

#: Set True (tests/debugging) to assert at run time that every integer
#: accumulator stays within its compile-time bound.
INT8_STRICT = False


def _int8_matmul(a, b, out=None):
    """GEMM over integer-valued operands.

    Exactness is guaranteed by the compile-time accumulator-bound
    analysis (every partial sum representable in the operand dtype) —
    which also makes ``out=`` placement value-neutral.  Tests monkeypatch
    this with an int64 matmul: bit-identical results prove the float
    path is exact at the actual model shapes.
    """
    return np.matmul(a, b, out=out)


def _cast_scratch(arr: np.ndarray, dtype, tag: str) -> np.ndarray:
    """Exact dtype conversion into step scratch (integer-valued arrays
    convert losslessly both ways below the mantissa bounds)."""
    if arr.dtype == dtype:
        return arr
    buf = take_scratch(tag, arr.shape, dtype)
    buf[...] = arr
    return buf


def _quantize_codes(x, q, out=None):
    """Float tensor → integer codes on stage ``q``'s grid.

    Identical decisions to :func:`fake_quant` (same ``x / scale`` →
    ``rint`` → ``clip`` operations), minus the final multiply back onto
    the grid — codes are the int8 backend's currency.
    """
    scale, qmax = _stage_scale(q), q["qmax"]
    r = np.divide(x, scale, out=out)
    np.rint(r, out=r)
    np.clip(r, -qmax, qmax, out=r)
    return r


def _requant_codes(acc, d, q, bias=None, qmax=None):
    """Integer accumulator → codes on stage ``q``'s grid, in place.

    Composes exactly like ``fake_quant(dequant(acc) [+ bias])``: multiply
    by the precomputed dequant scale product ``d``, add the (float) bias
    if the stage sits after one, divide by the stage scale, ``rint``,
    ``clip`` — the same elementwise grid operations, fused onto the
    accumulator with no allocation.

    ``qmax`` overrides the stage's scalar clip ceiling — per-tap grids
    (see :func:`repro.engine.int8.enable_per_tap`) refine tap ``(i,j)``'s
    scale to ``scale·2^f`` while widening its ceiling to ``qmax·2^-f``,
    so the override is a broadcastable array of per-tap ceilings.
    """
    acc *= d
    if bias is not None:
        acc += bias
    scale = _stage_scale(q)
    if qmax is None:
        qmax = q["qmax"]
    acc /= scale
    np.rint(acc, out=acc)
    np.clip(acc, -qmax, qmax, out=acc)
    return acc


def _requant_out(out, rq, bias_shape=None):
    """Output-stage requant: fused requant onto the q_output grid, then a
    lossless downcast to float32 (codes ≤ qmax are exactly representable)
    so the epilogue composes in float32 exactly like the reference path's
    elementwise ops.  No-op when the output stage is disabled."""
    if rq is None:
        return out
    bias = rq["bias"]
    if bias is not None and bias_shape is not None:
        bias = bias.reshape(bias_shape)
    _requant_codes(out, rq["d"], rq["q"], bias=bias)
    return _cast_scratch(out, np.float32, "rq_f32")


def _int8_epilogue(codes, i8, bshape):
    """Fused step epilogue on output codes (in place).

    ``float`` mode: dequant scale, bias and any absorbed BatchNorm are
    one per-channel affine ``codes·A + B`` (then ReLU).  ``int`` mode
    (integer handoff): the same affine lands directly on the consumer's
    input grid and is rounded/clipped there — a fused ReLU becomes the
    ``lo = 0`` clip bound, since ``rint``/``clip`` are monotone.
    """
    epi = i8["epi"]
    codes *= epi["A"].reshape(bshape)
    if epi["B"] is not None:
        codes += epi["B"].reshape(bshape)
    if epi["mode"] == "int":
        np.rint(codes, out=codes)
        np.clip(codes, epi["lo"], epi["hi"], out=codes)
    elif epi["relu"]:
        np.maximum(codes, 0.0, out=codes)
    return _cast_scratch(codes, np.float32, "epi_f32")


def _cold_fallback(fast_fn, inputs, attrs):
    """First batch(es) of a cold-compiled plan: run the float ``fast``
    kernel — freezing the dynamic ranges exactly like eager's
    eval-before-observation path — and apply any absorbed BatchNorm in
    float.  Once every stage is frozen the kernel switches to the
    integer path for good."""
    y = fast_fn(inputs, attrs)
    post = attrs["i8"].get("post")
    if post is not None:
        bshape = (1, -1) + (1,) * (y.ndim - 2)
        y = y * post["scale"].reshape(bshape) + post["shift"].reshape(bshape)
        if post["relu"]:
            np.maximum(y, 0.0, out=y)
    return y


def _int8_gate(op, fast_fn, inputs, attrs):
    """Shared dispatch: fall back for ineligible steps, run the cold
    float path until ranges freeze, lazily prepare constants once."""
    i8 = attrs.get("i8")
    if i8 is None or not i8.get("ok"):
        return None  # caller delegates to the float kernel
    if not i8.get("ready"):
        if stages_cold(attrs, op):
            return _cold_fallback(fast_fn, inputs, attrs)
        prepare_runtime(op, attrs)
    return i8


@register_kernel("winograd_conv2d", "int8")
def winograd_int8(inputs, attrs):
    """Winograd on integer codes: quantize once into the padded buffer,
    one integer Kronecker GEMM producing the Hadamard layout directly,
    integer Hadamard contraction, transpose-free integer output
    transform, fused requant between every stage.  Every buffer —
    padded codes, tile matrix, transform domains, NCHW assembly — comes
    from step scratch."""
    i8 = _int8_gate("winograd_conv2d", winograd_fast, inputs, attrs)
    if i8 is None:
        return winograd_fast(inputs, attrs)
    if not isinstance(i8, dict) or "btk" not in i8:
        return i8  # cold-fallback result
    (x,) = inputs
    m, r, t, g = attrs["m"], attrs["r"], attrs["t"], attrs["groups"]
    k, pad = attrs["out_channels"], attrs["pad"]
    dt_v, dt_h, dt_z = i8["dts"]

    rin = attrs.get("resident_src")
    if rin is not None:
        # Taps arrive as integer codes on this step's q_input_t grid (the
        # producer ran our btk GEMM + requant in its epilogue tail) in
        # the (N, t², C, th, tw) register layout the producer's batched
        # GEMM wrote directly; undo it into the Hadamard-ready (t², C·P)
        # order — the same single copy the non-resident path spends
        # casting ``v`` to the Hadamard dtype.
        n, c, th, tw = x.shape[0], x.shape[3], x.shape[4], x.shape[5]
        h, w = _pop_resident_hw(rin)
        out_h, out_w = h + 2 * pad - r + 1, w + 2 * pad - r + 1
        tt, p = t * t, n * th * tw
        v = take_scratch("v_h", (tt, c * p), dt_h)
        v.reshape(tt, g, c // g, n, th, tw)[...] = np.transpose(
            x.reshape(n, tt, g, c // g, th, tw), (1, 2, 3, 0, 4, 5)
        )
    else:
        n, c, h, w = x.shape
        out_h, out_w, th, tw = _winograd_geometry(h, w, m, r, pad)
        tt, p = t * t, n * th * tw
        need_h, need_w = th * m + r - 1, tw * m + r - 1
        aligned = pad == 0 and need_h == h and need_w == w

        # Quantize straight into the zero-padded buffer: one pass, and the
        # zero padding is its own quantization (code(0) = 0).  When the
        # tiles already cover the input exactly, prequantized codes are
        # tiled straight off the producer's register with no copy at all.
        if aligned and i8.get("input_prequantized"):
            xp = x
        else:
            xp = take_scratch(
                "xp", (n, c, need_h, need_w), np.float32, zero=not aligned
            )
            interior = xp if aligned else xp[:, :, pad : pad + h, pad : pad + w]
            if i8.get("input_prequantized"):
                interior[...] = x  # producer already emitted codes on our grid
            else:
                _quantize_codes(x, attrs["q_input"], out=interior)

        # Tile copy directly into (t², C·P) — the Kronecker GEMM then emits
        # the Hadamard-ready layout, killing the float path's big transpose.
        tiles = _strided_patches(xp, t, t, m, m)  # (n, c, th, tw, t, t) view
        tmat = take_scratch("tmat", (tt, c * p), dt_v)
        tmat.reshape(t, t, c, n, th, tw)[...] = np.transpose(tiles, (4, 5, 1, 0, 2, 3))
        v = _int8_matmul(
            i8["btk"], tmat, out=take_scratch("v", (tt, c * p), dt_v)
        )  # (t², C·P), exact integers
        if INT8_STRICT:
            assert float(np.abs(v).max(initial=0.0)) <= i8["bounds"][0]
        _requant_codes(v, i8["d_v"], attrs["q_input_t"], qmax=i8.get("qmax_v"))
        v = _cast_scratch(v, dt_h, "v_h")
    had = _int8_matmul(
        i8["u2q"],
        v.reshape(t, t, g, c // g, p),
        out=take_scratch("had", (t, t, g, k // g, p), dt_h),
    )  # (t, t, g, K/g, P)
    if INT8_STRICT:
        assert float(np.abs(had).max(initial=0.0)) <= i8["bounds"][1]
    _requant_codes(had, i8["d_h"], attrs["q_hadamard"], qmax=i8.get("qmax_h"))
    had = _cast_scratch(had, dt_z, "had_z")
    z = _int8_matmul(
        i8["atk"],
        had.reshape(tt, k * p),
        out=take_scratch("z", (m * m, k * p), dt_z),
    )  # (m², K·P)
    if INT8_STRICT:
        assert float(np.abs(z).max(initial=0.0)) <= i8["bounds"][2]
    z = _requant_out(z, i8["rq_out"])
    out = _int8_epilogue(z.reshape(m * m, k, p), i8, (1, k, 1))
    ro = attrs.get("resident_out")
    if ro is not None:
        return _emit_resident_int8(out, ro, n, k, th, tw, m, out_h, out_w)
    y = take_scratch("y", (n, k, th * m, tw * m), np.float32)
    y.reshape(n, k, th, m, tw, m)[...] = np.transpose(
        out.reshape(m, m, k, n, th, tw), (3, 2, 4, 0, 5, 1)
    )
    if th * m != out_h or tw * m != out_w:
        y = y[:, :, :out_h, :out_w]
    return y


def _emit_resident_int8(
    codes: np.ndarray, ro: Dict, n: int, c: int,
    pth: int, ptw: int, pm: int, h: int, w: int,
) -> np.ndarray:
    """Producer tail of an int8 resident edge.

    ``codes`` is the producer's epilogue output, still in the (m², K, P)
    GEMM layout — integer codes on the consumer's input grid (residency
    requires the integer handoff, so the epilogue ran in ``int`` mode).
    The spatial assembly lands in one transpose copy directly inside the
    consumer's padded buffer (only the border needs zeroing — zero
    padding needs no quantization, code(0) = 0, exactly like the
    consumer's own prologue).  From there the consumer's tile
    extraction, integer Kronecker transform and q_input_t requant run
    against the *consumer's* compiled constants — including its per-tap
    scale grid when enabled — and the code taps go into this step's
    planned register.
    """
    i8c = ro["i8"]
    m, r, t, pad = ro["m"], ro["r"], ro["t"], ro["pad"]
    _, _, th, tw = _winograd_geometry(h, w, m, r, pad)
    tt, p = t * t, n * th * tw
    need_h, need_w = th * m + r - 1, tw * m + r - 1
    dt_v = i8c["dts"][0]

    xp = take_scratch("r_xp", (n, c, need_h, need_w), np.float32)
    if pad or need_h != h or need_w != w:
        xp[:, :, :pad] = 0.0
        xp[:, :, pad + h :] = 0.0
        xp[:, :, :, :pad] = 0.0
        xp[:, :, :, pad + w :] = 0.0
    interior = xp[:, :, pad : pad + h, pad : pad + w]
    src6 = codes.reshape(pm, pm, c, n, pth, ptw)
    if pth * pm == h and ptw * pm == w:
        s = interior.strides
        grid = np.lib.stride_tricks.as_strided(
            interior,
            (n, c, pth, pm, ptw, pm),
            (s[0], s[1], s[2] * pm, s[2], s[3] * pm, s[3]),
        )
        grid[...] = np.transpose(src6, (3, 2, 4, 0, 5, 1))
    else:
        yout = take_scratch("y", (n, c, pth * pm, ptw * pm), np.float32)
        yout.reshape(n, c, pth, pm, ptw, pm)[...] = np.transpose(
            src6, (3, 2, 4, 0, 5, 1)
        )
        interior[...] = yout[:, :, :h, :w]
    # Batch-major tile matrix, transform axes ahead of channels — the
    # broadcast integer Kronecker GEMM (one sgemm per sample) then emits
    # the tap register's own (N, t², C·th·tw) layout directly, so the
    # producer pays no relayout copy at all.  Integer arithmetic is
    # exact at any operand layout, so the oracle contract is unaffected.
    tmat = take_scratch("r_tmat", (n, tt, c * th * tw), dt_v)
    tmat.reshape(n, t, t, c, th, tw)[...] = np.transpose(
        _strided_patches(xp, t, t, m, m), (0, 4, 5, 1, 2, 3)
    )
    out = take_out((n, t, t, c, th, tw), np.float32)
    direct = out is not None and np.dtype(dt_v) == np.float32
    gemm_out = (
        out.reshape(n, tt, c * th * tw)
        if direct
        else take_scratch("r_v", (n, tt, c * th * tw), dt_v)
    )
    v = _int8_matmul(i8c["btk"], tmat, out=gemm_out)
    if INT8_STRICT:
        assert float(np.abs(v).max(initial=0.0)) <= i8c["bounds"][0]
    # d_v / qmax_v are (t², 1): broadcasting aligns them with axis -2, the
    # transform axis, in the batched layout exactly as in the flat one.
    _requant_codes(v, i8c["d_v"], ro["q_input_t"], qmax=i8c.get("qmax_v"))
    if not direct:
        if out is None:
            out = np.empty((n, t, t, c, th, tw), dtype=np.float32)
        out.reshape(n, tt, c * th * tw)[...] = v  # lossless cast copy
    _stash_resident_hw(ro, (h, w))
    return out


@register_kernel("conv2d", "int8")
def conv2d_int8(inputs, attrs):
    """im2row GEMM on integer codes with fused requant epilogue."""
    i8 = _int8_gate("conv2d", conv2d_fast, inputs, attrs)
    if i8 is None:
        return conv2d_fast(inputs, attrs)
    if not isinstance(i8, dict) or "dt" not in i8:
        return i8  # cold-fallback result
    (x,) = inputs
    sh, sw = attrs["stride"]
    ph, pw = attrs["padding"]
    g = attrs["groups"]
    k, cg, kh, kw = attrs["weight"].shape
    n, c, h, w = x.shape
    dt = i8["dt"]
    rq = i8["rq_out"]

    if "wq_1x1" in i8:
        if i8.get("input_prequantized"):
            qx = np.ascontiguousarray(x).reshape(n, c, h * w)
        else:
            qx = _quantize_codes(
                x, attrs["q_input"], out=take_scratch("qx", x.shape, np.float32)
            ).reshape(n, c, h * w)
        qx = _cast_scratch(qx, dt, "qx_dt")
        out = _int8_matmul(
            i8["wq_1x1"][None], qx, out=take_scratch("gemm", (n, k, h * w), dt)
        )  # (n, K, H·W)
        if INT8_STRICT:
            assert float(np.abs(out).max(initial=0.0)) <= i8["bound"]
        out = _requant_out(out, rq, bias_shape=(1, k, 1))
        out = _int8_epilogue(out, i8, (1, k, 1))
        return out.reshape(n, k, h, w)

    xp = take_scratch("xp", (n, c, h + 2 * ph, w + 2 * pw), np.float32, zero=True)
    interior = xp[:, :, ph : ph + h, pw : pw + w]
    if i8.get("input_prequantized"):
        interior[...] = x
    else:
        _quantize_codes(x, attrs["q_input"], out=interior)
    patches = _strided_patches(xp, kh, kw, sh, sw)
    oh, ow = patches.shape[2], patches.shape[3]
    if g == 1:
        rows = take_scratch("rows", (n * oh * ow, c * kh * kw), dt)
        rows.reshape(n, oh, ow, c, kh, kw)[...] = np.transpose(
            patches, (0, 2, 3, 1, 4, 5)
        )
        out = _int8_matmul(
            rows, i8["wq_mat"], out=take_scratch("gemm", (n * oh * ow, k), dt)
        )  # (n·oh·ow, K)
        if INT8_STRICT:
            assert float(np.abs(out).max(initial=0.0)) <= i8["bound"]
        out = _requant_out(out, rq)
        out = _int8_epilogue(out, i8, (k,))
        return np.transpose(out.reshape(n, oh, ow, k), (0, 3, 1, 2))
    rows = take_scratch("rows", (g, n * oh * ow, (c // g) * kh * kw), dt)
    rows.reshape(g, n, oh, ow, c // g, kh, kw)[...] = np.transpose(
        patches.reshape(n, g, c // g, oh, ow, kh, kw), (1, 0, 3, 4, 2, 5, 6)
    )
    out = _int8_matmul(
        rows, i8["wq_mat"], out=take_scratch("gemm", (g, n * oh * ow, k // g), dt)
    )  # (g, n·oh·ow, K/g)
    if INT8_STRICT:
        assert float(np.abs(out).max(initial=0.0)) <= i8["bound"]
    out = _requant_out(out, rq, bias_shape=(g, 1, k // g))
    out = _int8_epilogue(out, i8, (g, 1, k // g))
    return np.transpose(
        out.reshape(g, n, oh, ow, k // g), (1, 0, 4, 2, 3)
    ).reshape(n, k, oh, ow)


@register_kernel("linear", "int8")
def linear_int8(inputs, attrs):
    """Fully-connected layer on integer codes."""
    i8 = _int8_gate("linear", linear_kernel, inputs, attrs)
    if i8 is None:
        return linear_kernel(inputs, attrs)
    if not isinstance(i8, dict) or "wq_t" not in i8:
        return i8  # cold-fallback result
    (x,) = inputs
    k = attrs["weight"].shape[0]
    if i8.get("input_prequantized"):
        qx = np.ascontiguousarray(x)
    else:
        qx = _quantize_codes(
            x, attrs["q_input"], out=take_scratch("qx", x.shape, np.float32)
        )
    qx = _cast_scratch(qx, i8["dt"], "qx_dt")
    out = _int8_matmul(
        qx, i8["wq_t"], out=take_scratch("gemm", (x.shape[0], k), i8["dt"])
    )  # (N, out)
    if INT8_STRICT:
        assert float(np.abs(out).max(initial=0.0)) <= i8["bound"]
    out = _requant_out(out, i8["rq_out"])
    return _int8_epilogue(out, i8, (k,))
