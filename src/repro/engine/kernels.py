"""Built-in inference kernels.

Two backends per op where it matters:

* ``reference`` kernels replay the eager eval-mode forward operation for
  operation — same NumPy calls, same order, same intermediate layouts —
  so outputs are bit-identical to the autograd path (including every
  fake-quantization stage, using the observer ranges frozen at compile
  time);
* ``fast`` kernels compute the same function with deployment-oriented
  shortcuts: pre-folded BatchNorm, fused ReLU/bias epilogues, zero-copy
  strided tile extraction, a dedicated 1×1-convolution GEMM, and cached
  (pre-transformed, pre-laid-out) Winograd filters.

Kernel signature: ``kernel(inputs, attrs) -> np.ndarray``.  ``attrs`` is
the step's frozen attribute dict; quantization stages appear as
``q_<stage>`` entries of the form ``{"scale": s, "qmax": q}`` (frozen
observer) or ``{"dynamic_bits": b}`` (uncalibrated observer: range taken
from the batch, mirroring the eager fallback), or ``None`` when disabled.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engine.registry import register_kernel
from repro.quant.quantizer import quantization_scale


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def fake_quant(x: np.ndarray, q: Optional[Dict]) -> np.ndarray:
    """Apply one frozen fake-quantization stage (mirrors ``FakeQuant``).

    A stage compiled from an unwarmed activation observer starts as
    ``{"dynamic_bits": b}``; like eager's eval-before-observation
    fallback it takes the range from the first batch it sees — and then
    freezes it into the stage dict, exactly as eager's observer
    initialises once and keeps that range for every later batch.  (The
    plan's frozen copy does not write back to the model's observer
    buffers; recompile after calibrating the model to pick them up.)
    """
    if q is None:
        return x
    if "scale" in q:
        scale, qmax = q["scale"], q["qmax"]
    else:
        bits = q["dynamic_bits"]
        qmax = float(2 ** (bits - 1) - 1)
        batch_max = float(np.abs(x).max()) if x.size else 0.0
        scale = quantization_scale(batch_max, bits)
        q["scale"], q["qmax"] = scale, qmax  # freeze, mirroring the observer
    # One allocation, then in-place: same elementwise operations (and the
    # same roundings) as rint(x / scale) -> clip -> * scale -> astype.
    r = x / scale
    np.rint(r, out=r)
    np.clip(r, -qmax, qmax, out=r)
    r *= scale
    return r if r.dtype == x.dtype else r.astype(x.dtype)


def _strided_patches(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """(N, C, nH, nW, kh, kw) sliding-window *view* (no copy)."""
    n, c, h, w = x.shape
    nh = (h - kh) // sh + 1
    nw = (w - kw) // sw + 1
    sn, sc, shh, sww = x.strides
    return np.lib.stride_tricks.as_strided(
        x, shape=(n, c, nh, nw, kh, kw), strides=(sn, sc, shh * sh, sww * sw, shh, sww)
    )


def _epilogue(y: np.ndarray, attrs: Dict, k: int, quantize_output: bool = True) -> np.ndarray:
    """Fast-path conv epilogue: bias, output quant, fused ReLU.

    Folded BN lives entirely in the step's weights/bias by the time the
    kernel runs (see ``_fold_bn``), so no affine remains here.  The
    Winograd kernel quantizes its output *before* the bias (matching the
    eager pipeline order) and passes ``quantize_output=False``; the
    standard conv quantizes after the bias, matching ``QuantConv2d``.
    """
    bias = attrs.get("bias")
    if bias is not None:
        y = y + bias.reshape(1, k, 1, 1)
    if quantize_output:
        y = fake_quant(y, attrs.get("q_output"))
    if attrs.get("fuse_relu"):
        y = np.maximum(y, 0.0)
    return y


# ---------------------------------------------------------------------------
# Elementwise / shape ops (shared by both backends)
# ---------------------------------------------------------------------------


@register_kernel("relu")
def relu_kernel(inputs, attrs):
    (x,) = inputs
    mask = x > 0
    return np.where(mask, x, 0.0).astype(x.dtype)


@register_kernel("relu", "fast")
def relu_fast(inputs, attrs):
    (x,) = inputs
    return np.maximum(x, 0.0)


@register_kernel("add")
def add_kernel(inputs, attrs):
    a, b = inputs
    y = a + b
    if attrs.get("fuse_relu"):
        y = np.maximum(y, 0.0)
    return y


@register_kernel("concat")
def concat_kernel(inputs, attrs):
    return np.concatenate(inputs, axis=attrs.get("axis", 1))


@register_kernel("flatten")
def flatten_kernel(inputs, attrs):
    (x,) = inputs
    return x.reshape(x.shape[0], int(np.prod(x.shape[1:])))


@register_kernel("record_hw")
def record_hw_kernel(inputs, attrs):
    """Record the incoming spatial shape on the source module.

    This keeps ``repro.hardware`` consumers (the latency table) working
    when a model is probed through a compiled plan instead of an eager
    forward: the plan writes ``last_input_hw`` exactly like the eager
    layers do.
    """
    (x,) = inputs
    for module in attrs["modules"]:
        module.last_input_hw = (x.shape[2], x.shape[3])
    return x


@register_kernel("eager_module")
def eager_module_kernel(inputs, attrs):
    """Fallback for module types with no lowering rule: call eager forward."""
    from repro.autograd.function import no_grad
    from repro.autograd.tensor import Tensor

    (x,) = inputs
    with no_grad():
        out = attrs["module"](Tensor(x))
    return out.data


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


@register_kernel("max_pool")
def max_pool_kernel(inputs, attrs):
    (x,) = inputs
    kh, kw = attrs["kernel"]
    sh, sw = attrs["stride"]
    patches = _strided_patches(x, kh, kw, sh, sw)
    return patches.max(axis=(4, 5))


@register_kernel("max_pool", "fast")
def max_pool_fast(inputs, attrs):
    """Window max as kh·kw strided-slice maximums (bit-equal to reference:
    max is exactly associative, only the reduction order differs)."""
    (x,) = inputs
    kh, kw = attrs["kernel"]
    sh, sw = attrs["stride"]
    n, c, h, w = x.shape
    nh = (h - kh) // sh + 1
    nw = (w - kw) // sw + 1
    out = None
    for i in range(kh):
        for j in range(kw):
            window = x[:, :, i : i + sh * nh : sh, j : j + sw * nw : sw]
            if out is None:
                out = np.ascontiguousarray(window)
            else:
                np.maximum(out, window, out=out)
    return out


@register_kernel("avg_pool")
def avg_pool_kernel(inputs, attrs):
    (x,) = inputs
    kh, kw = attrs["kernel"]
    sh, sw = attrs["stride"]
    patches = _strided_patches(x, kh, kw, sh, sw)
    # Mirror eager ops.mean: sum * (1/count) in float32.
    return patches.sum(axis=(4, 5)) * np.float32(1.0 / (kh * kw))


@register_kernel("global_avg_pool")
def global_avg_pool_kernel(inputs, attrs):
    (x,) = inputs
    count = x.shape[2] * x.shape[3]
    return x.sum(axis=(2, 3)) * np.float32(1.0 / count)


# ---------------------------------------------------------------------------
# BatchNorm (inference affine)
# ---------------------------------------------------------------------------


@register_kernel("affine")
def affine_kernel(inputs, attrs):
    """Eval-mode BatchNorm, mirroring ``F.batch_norm2d`` op for op."""
    (x,) = inputs
    c = x.shape[1]
    mean = attrs["mean"].reshape(1, c, 1, 1)
    inv_std = attrs["inv_std"].reshape(1, c, 1, 1)
    gamma = attrs["gamma"].reshape(1, c, 1, 1)
    beta = attrs["beta"].reshape(1, c, 1, 1)
    y = ((x - mean) * inv_std) * gamma + beta
    if attrs.get("fuse_relu"):
        y = np.maximum(y, 0.0)
    return y


@register_kernel("affine", "fast")
def affine_fast(inputs, attrs):
    (x,) = inputs
    c = x.shape[1]
    y = x * attrs["scale"].reshape(1, c, 1, 1) + attrs["shift"].reshape(1, c, 1, 1)
    if attrs.get("fuse_relu"):
        np.maximum(y, 0.0, out=y)
    return y


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------


@register_kernel("linear")
def linear_kernel(inputs, attrs):
    (x,) = inputs
    x = fake_quant(x, attrs.get("q_input"))
    out = np.matmul(x, attrs["weight"].transpose())
    bias = attrs.get("bias")
    if bias is not None:
        out = out + bias
    out = fake_quant(out, attrs.get("q_output"))
    if attrs.get("fuse_relu"):
        out = np.maximum(out, 0.0)
    return out


# ---------------------------------------------------------------------------
# Standard convolution (im2row GEMM)
# ---------------------------------------------------------------------------


@register_kernel("conv2d")
def conv2d_reference(inputs, attrs):
    """Bit-faithful mirror of ``F.conv2d_im2row`` (plus quant stages)."""
    (x,) = inputs
    weight = attrs["weight"]
    bias = attrs.get("bias")
    sh, sw = attrs["stride"]
    ph, pw = attrs["padding"]
    groups = attrs["groups"]
    x = fake_quant(x, attrs.get("q_input"))
    n, c, h, w = x.shape
    k, cg, kh, kw = weight.shape
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    patches = np.ascontiguousarray(_strided_patches(xp, kh, kw, sh, sw))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if groups == 1:
        rows = np.transpose(patches, (0, 2, 3, 1, 4, 5)).reshape(n * oh * ow, c * kh * kw)
        wmat = weight.reshape(k, c * kh * kw).transpose()
        out = np.transpose(np.matmul(rows, wmat).reshape(n, oh, ow, k), (0, 3, 1, 2))
    else:
        g = groups
        rows = np.transpose(
            patches.reshape(n, g, c // g, oh, ow, kh, kw), (1, 0, 3, 4, 2, 5, 6)
        ).reshape(g, n * oh * ow, (c // g) * kh * kw)
        wmat = np.transpose(weight.reshape(g, k // g, (c // g) * kh * kw), (0, 2, 1))
        out = np.transpose(
            np.matmul(rows, wmat).reshape(g, n, oh, ow, k // g), (1, 0, 4, 2, 3)
        ).reshape(n, k, oh, ow)
    if bias is not None:
        out = out + bias.reshape(1, k, 1, 1)
    out = fake_quant(out, attrs.get("q_output"))
    if attrs.get("fuse_relu"):
        out = np.maximum(out, 0.0)
    return out


@register_kernel("conv2d", "fast")
def conv2d_fast(inputs, attrs):
    """im2row GEMM with a 1×1 shortcut and fused epilogue.

    ``attrs["weight"]`` may already carry folded BatchNorm scales; any
    remaining affine lives in ``attrs["scale"]/["shift"]`` (quantized
    convs keep BN separate to preserve the quantization grid).
    """
    (x,) = inputs
    weight = attrs["weight"]
    sh, sw = attrs["stride"]
    ph, pw = attrs["padding"]
    groups = attrs["groups"]
    x = fake_quant(x, attrs.get("q_input"))
    n, c, h, w = x.shape
    k, cg, kh, kw = weight.shape

    if kh == 1 and kw == 1 and (sh, sw) == (1, 1) and (ph, pw) == (0, 0) and groups == 1:
        # 1×1 convolution is a plain channel GEMM: (K, C) @ (C, H·W).
        wmat = attrs["wmat"]  # (K, C), contiguous, precomputed
        out = np.matmul(wmat[None], x.reshape(n, c, h * w)).reshape(n, k, h, w)
        return _epilogue(out, attrs, k)

    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x
    patches = _strided_patches(xp, kh, kw, sh, sw)
    oh, ow = patches.shape[2], patches.shape[3]
    if groups == 1:
        rows = np.transpose(patches, (0, 2, 3, 1, 4, 5)).reshape(n * oh * ow, c * kh * kw)
        out = np.transpose(
            np.matmul(rows, attrs["wmat"]).reshape(n, oh, ow, k), (0, 3, 1, 2)
        )
    else:
        g = groups
        rows = np.transpose(
            patches.reshape(n, g, c // g, oh, ow, kh, kw), (1, 0, 3, 4, 2, 5, 6)
        ).reshape(g, n * oh * ow, (c // g) * kh * kw)
        out = np.transpose(
            np.matmul(rows, attrs["wmat"]).reshape(g, n, oh, ow, k // g), (1, 0, 4, 2, 3)
        ).reshape(n, k, oh, ow)
    return _epilogue(out, attrs, k)


# ---------------------------------------------------------------------------
# Winograd convolution with cached filter transforms
# ---------------------------------------------------------------------------


def _winograd_geometry(h, w, m, r, pad):
    out_h = h + 2 * pad - r + 1
    out_w = w + 2 * pad - r + 1
    th = -(-out_h // m)
    tw = -(-out_w // m)
    return out_h, out_w, th, tw


@register_kernel("winograd_conv2d")
def winograd_reference(inputs, attrs):
    """Bit-faithful mirror of ``WinogradConv2d.forward`` in eval mode.

    The filter transform ``U = Qwt(G · Qw(g) · Gᵀ)`` was computed once at
    compile time (``attrs["u"]``) — identical values to what the eager
    layer recomputes every forward.
    """
    (x,) = inputs
    u = attrs["u"]  # (K, C/g, t, t)
    BT, AT = attrs["BT"], attrs["AT"]
    bias = attrs.get("bias")
    m, r, t, g = attrs["m"], attrs["r"], attrs["t"], attrs["groups"]
    k, pad = attrs["out_channels"], attrs["pad"]

    x = fake_quant(x, attrs.get("q_input"))
    n, c, h, w = x.shape
    out_h, out_w, th, tw = _winograd_geometry(h, w, m, r, pad)

    need_h = th * m + r - 1
    need_w = tw * m + r - 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, need_h - h - pad), (pad, need_w - w - pad)))
    tiles = np.ascontiguousarray(_strided_patches(xp, t, t, m, m))
    v = np.matmul(np.matmul(BT, tiles), BT.transpose())
    v = fake_quant(v, attrs.get("q_input_t"))

    p = n * th * tw
    u2 = np.transpose(u.reshape(g, k // g, c // g, t, t), (3, 4, 0, 1, 2))
    v2 = np.transpose(
        v.reshape(n, g, c // g, th, tw, t, t), (5, 6, 1, 2, 0, 3, 4)
    ).reshape(t, t, g, c // g, p)
    had = np.matmul(u2, v2)  # (t, t, g, K/g, P)
    had = fake_quant(had, attrs.get("q_hadamard"))

    y = np.transpose(had.reshape(t, t, k, p), (2, 3, 0, 1))
    y = np.matmul(np.matmul(AT, y), AT.transpose())  # (K, P, m, m)
    y = fake_quant(y, attrs.get("q_output"))

    y = np.transpose(y.reshape(k, n, th, tw, m, m), (1, 0, 2, 4, 3, 5)).reshape(
        n, k, th * m, tw * m
    )
    if th * m != out_h:
        y = y[:, :, :out_h, :]
    if tw * m != out_w:
        y = y[:, :, :, :out_w]
    if bias is not None:
        y = y + bias.reshape(1, k, 1, 1)
    if attrs.get("fuse_relu"):
        y = np.maximum(y, 0.0)
    return y


@register_kernel("winograd_conv2d", "fast")
def winograd_fast(inputs, attrs):
    """Deployment Winograd path: Kronecker tile transforms + batched GEMMs.

    ``Bᵀ d B`` over a t×t tile is linear in the flattened tile, so the
    input transform for *all* N·C·th·tw tiles of the batch is one
    ``(N·C·th·tw, t²) × (t², t²)`` GEMM against the cached Kronecker
    matrix ``kron(Bᵀ, Bᵀ)ᵀ`` (``attrs["btk"]``), and likewise the output
    transform against ``kron(Aᵀ, Aᵀ)ᵀ``.  The Hadamard stage is t² GEMMs
    of (K/g × C/g)·(C/g × P) per group.  GEMM row counts scale with the
    batch, so per-sample cost *drops* as the dynamic batcher coalesces
    requests — deep layers (few tiles per sample) amortise hardest.
    Bias / folded BN / fused ReLU are applied in a single epilogue.
    """
    (x,) = inputs
    u2 = attrs["u2"]  # (t, t, g, K/g, C/g), contiguous, cached at compile
    btk, atk = attrs.get("btk"), attrs.get("atk")  # (t², t²), (t², m²)
    m, r, t, g = attrs["m"], attrs["r"], attrs["t"], attrs["groups"]
    k, pad = attrs["out_channels"], attrs["pad"]

    x = fake_quant(x, attrs.get("q_input"))
    n, c, h, w = x.shape
    out_h, out_w, th, tw = _winograd_geometry(h, w, m, r, pad)
    tt, p = t * t, n * th * tw

    need_h = th * m + r - 1
    need_w = tw * m + r - 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, need_h - h - pad), (pad, need_w - w - pad)))
    tiles = _strided_patches(xp, t, t, m, m)  # view, no copy
    if btk is None:  # large tiles: nested two-stage transform (precision)
        BT = attrs["BT"]
        v = np.matmul(np.matmul(BT, tiles), BT.transpose())
        v = fake_quant(v, attrs.get("q_input_t"))
        v2 = np.transpose(
            v.reshape(n, g, c // g, th, tw, t, t), (5, 6, 1, 2, 0, 3, 4)
        ).reshape(t, t, g, c // g, p)
    else:
        v = np.ascontiguousarray(tiles).reshape(n * c * th * tw, tt) @ btk
        v = fake_quant(v, attrs.get("q_input_t"))
        v2 = np.ascontiguousarray(
            np.transpose(
                v.reshape(n, g, c // g, th * tw, tt), (4, 1, 2, 0, 3)
            ).reshape(t, t, g, c // g, p)
        )
    had = np.matmul(u2, v2)  # (t, t, g, K/g, P)
    had = fake_quant(had, attrs.get("q_hadamard"))

    if atk is None:
        AT = attrs["AT"]
        y = np.transpose(had.reshape(t, t, k, p), (2, 3, 0, 1))
        y = np.matmul(np.matmul(AT, y), AT.transpose())  # (K, P, m, m)
    else:
        y = np.ascontiguousarray(np.transpose(had.reshape(tt, k * p), (1, 0))) @ atk
    y = fake_quant(y, attrs.get("q_output"))

    y = np.transpose(y.reshape(k, n, th, tw, m, m), (1, 0, 2, 4, 3, 5)).reshape(
        n, k, th * m, tw * m
    )
    if th * m != out_h or tw * m != out_w:
        y = y[:, :, :out_h, :out_w]
    return _epilogue(y, attrs, k, quantize_output=False)
