"""Compile support for the native integer-arithmetic ``int8`` backend.

The fake-quant pipeline only ever *sees* values on uniform grids
``value = scale · code`` with integer codes in ``[-qmax, qmax]``.  The
``int8`` backend therefore executes quantized layers on the codes:

* weights (including the transform-domain Winograd weights ``GgGᵀ``) are
  converted to their integer codes once, at compile time;
* each activation tensor is quantized to codes once (same ``x / scale``
  → ``rint`` → ``clip`` decisions as :func:`~repro.engine.kernels.fake_quant`);
* every GEMM — im2row, the Kronecker-form tile transforms ``BᵀdB`` /
  ``AᵀyA`` and the transform-domain Hadamard contraction — runs over
  integer-valued float arrays.  A float GEMM over integer values is
  *exact* (any accumulation order, any BLAS blocking) as long as every
  partial sum stays below the mantissa bound: ``2^24`` for float32,
  ``2^53`` for float64.  :func:`_pick_dtype` proves that bound from the
  compile-time shapes and bit-widths and picks the dtype; steps whose
  accumulators cannot be bounded fall back to the ``fast`` kernels.
* each fake-quant stage becomes a fused requantization on the codes:
  ``codes' = clip(rint((codes · dequant) / scale))`` with the dequant
  scale product precomputed — the dequantize → re-quantize round trip
  (four full-tensor passes plus allocations per stage) disappears.

Because the transform matrices of every supported Cook–Toom ``F(m, r)``
are dyadic rationals (integers after scaling by a power of two — checked
at compile time, so trained *flex* transforms gracefully fall back), the
tile transforms are integer GEMMs too, and the backend may use the
Kronecker formulation at every tile size **and** pick layouts freely:
reassociation is exact on integers, unlike the float path where it can
flip quantization-bin decisions.

Junction fusion
---------------
After per-step preparation, a fusion pass exploits that codes are the
native currency between quantized layers:

* an eval-mode BatchNorm (``affine`` step, with a fused ReLU) that
  directly follows an int8-capable step is absorbed into that step's
  epilogue (the per-channel scale/shift ride on the dequant multiplier);
* when an int8 step's output — possibly through grid-preserving ops
  (``max_pool``, ``flatten``, ``record_hw``) — feeds exactly one other
  int8 step whose quantization ranges are frozen, the producer emits
  integer codes *directly on the consumer's input grid* and the consumer
  skips its quantization prologue entirely.  ``max_pool`` commutes with
  the (monotone) dequantize, so pooling codes selects the same elements
  as pooling values.

Handoffs are only wired when every quantization range involved is frozen
at compile time (a calibrated model); a plan compiled from a cold model
keeps float handoffs and warms its per-step constants lazily after the
first batch froze the ranges (via the ``fast``-kernel fallback, which
freezes exactly like eager's eval-before-observation path).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

#: Largest magnitude whose integers are all exactly representable.
_DTYPE_BOUNDS = ((np.float32, 2.0**24), (np.float64, 2.0**53))

#: Deepest dyadic refinement a per-tap scale grid may apply (2^-8): past
#: this the analytic tap bounds are far below the observer's resolution
#: and further refinement only sharpens clipping.
_PER_TAP_MAX_SHIFT = 8

#: Ops with a native int8 kernel.
INT8_OPS = ("conv2d", "winograd_conv2d", "linear")

#: Ops that forward integer codes unchanged (grid-preserving): max is
#: monotone under the positive dequant scale, flatten/record_hw are
#: shape/metadata only.
PASSTHROUGH_OPS = frozenset({"max_pool", "flatten", "record_hw"})

#: Activation-side quantization stages per op (weight stages are frozen
#: at compile time and handled statically).
ACTIVATION_STAGES = {
    "conv2d": ("q_input", "q_output"),
    "linear": ("q_input", "q_output"),
    "winograd_conv2d": ("q_input", "q_input_t", "q_hadamard", "q_output"),
}


# ---------------------------------------------------------------------------
# Small helpers
# ---------------------------------------------------------------------------


def dyadic_exponent(matrix: np.ndarray, limit: int = 24) -> Optional[int]:
    """Smallest ``e`` such that ``matrix · 2^e`` is exactly integral.

    Returns ``None`` when no such ``e ≤ limit`` exists (e.g. trained
    *flex* transforms) — the step then keeps the float fallback path.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if not np.all(np.isfinite(a)):
        return None
    for e in range(limit + 1):
        scaled = np.ldexp(a, e)
        if np.all(scaled == np.rint(scaled)):
            return e
    return None


def _qmax(q: Optional[Dict]) -> Optional[float]:
    """Clip bound of a stage dict (frozen or still-dynamic)."""
    if q is None:
        return None
    if "qmax" in q:
        return float(q["qmax"])
    return float(2 ** (q["dynamic_bits"] - 1) - 1)


def _pick_dtype(bound: float):
    """Smallest float dtype in which every partial sum ≤ ``bound`` is
    exact, or ``None`` if even float64 cannot guarantee exactness."""
    for dtype, limit in _DTYPE_BOUNDS:
        if bound <= limit:
            return dtype
    return None


def _frozen(q: Optional[Dict]) -> bool:
    return q is None or "scale" in q


def _all_frozen(step) -> bool:
    return all(_frozen(step.attrs.get(name)) for name in ACTIVATION_STAGES[step.op])


def stages_cold(attrs: Dict, op: str) -> bool:
    """True while any activation stage still waits for its first batch."""
    return not all(_frozen(attrs.get(name)) for name in ACTIVATION_STAGES[op])


def _codes(values: np.ndarray, q: Dict, dtype) -> np.ndarray:
    """Recover the integer codes of an already fake-quantized array.

    ``values`` is ``scale · code`` computed in float32; dividing by the
    same scale lands within a few ulp of the integer, so ``rint`` is
    exact recovery.
    """
    return np.rint(values / q["scale"]).astype(dtype)


# ---------------------------------------------------------------------------
# Static (scale-independent) per-step preparation
# ---------------------------------------------------------------------------


def _static_conv2d(attrs: Dict) -> Optional[Dict]:
    q_in, q_w = attrs.get("q_input"), attrs.get("q_weight")
    if q_in is None or not isinstance(q_w, dict) or "scale" not in q_w:
        return None
    w = attrs["weight"]
    k, cg, kh, kw = w.shape
    g = attrs["groups"]
    reduction = cg * kh * kw
    bound = reduction * _qmax(q_in) * _qmax(q_w)
    dtype = _pick_dtype(bound)
    if dtype is None:
        return None
    wq = _codes(w, q_w, dtype)
    i8 = {
        "ok": True,
        "ready": False,
        "dt": dtype,
        "bound": bound,
        "s_w": float(q_w["scale"]),
    }
    if (
        kh == 1
        and kw == 1
        and g == 1
        and attrs["stride"] == (1, 1)
        and attrs["padding"] == (0, 0)
    ):
        i8["wq_1x1"] = np.ascontiguousarray(wq.reshape(k, cg))
    elif g == 1:
        i8["wq_mat"] = np.ascontiguousarray(wq.reshape(k, reduction).transpose())
    else:
        i8["wq_mat"] = np.ascontiguousarray(
            np.transpose(wq.reshape(g, k // g, reduction), (0, 2, 1))
        )
    return i8


def _static_linear(attrs: Dict) -> Optional[Dict]:
    q_in, q_w = attrs.get("q_input"), attrs.get("q_weight")
    if q_in is None or not isinstance(q_w, dict) or "scale" not in q_w:
        return None
    w = attrs["weight"]  # (out, in)
    bound = w.shape[1] * _qmax(q_in) * _qmax(q_w)
    dtype = _pick_dtype(bound)
    if dtype is None:
        return None
    return {
        "ok": True,
        "ready": False,
        "dt": dtype,
        "bound": bound,
        "s_w": float(q_w["scale"]),
        "wq_t": np.ascontiguousarray(_codes(w, q_w, dtype).transpose()),
    }


def _static_winograd(attrs: Dict) -> Optional[Dict]:
    q_in = attrs.get("q_input")
    q_v = attrs.get("q_input_t")
    q_h = attrs.get("q_hadamard")
    q_wt = attrs.get("q_weight_t")
    if q_in is None or q_v is None or q_h is None:
        return None
    if not isinstance(q_wt, dict) or "scale" not in q_wt:
        return None
    BT, AT = attrs["BT"], attrs["AT"]
    eb, ea = dyadic_exponent(BT), dyadic_exponent(AT)
    if eb is None or ea is None:  # flex / non-dyadic transforms
        return None
    bt_s = np.rint(np.ldexp(BT.astype(np.float64), eb))
    at_s = np.rint(np.ldexp(AT.astype(np.float64), ea))
    btk = np.kron(bt_s, bt_s)  # (t², t²): vec(BᵀDB) = (Bᵀ⊗Bᵀ)·vec(D)
    atk = np.kron(at_s, at_s)  # (m², t²)

    bound_v = float(np.abs(btk).sum(axis=1).max()) * _qmax(q_in)
    cg = attrs["u"].shape[1]
    bound_h = cg * _qmax(q_wt) * _qmax(q_v)
    bound_z = float(np.abs(atk).sum(axis=1).max()) * _qmax(q_h)
    dt_v, dt_h, dt_z = (_pick_dtype(b) for b in (bound_v, bound_h, bound_z))
    if dt_v is None or dt_h is None or dt_z is None:
        return None

    u = attrs["u"]
    g, t, k = attrs["groups"], attrs["t"], attrs["out_channels"]
    u2q = np.ascontiguousarray(
        np.transpose(
            _codes(u, q_wt, dt_h).reshape(g, k // g, cg, t, t), (3, 4, 0, 1, 2)
        )
    )
    return {
        "ok": True,
        "ready": False,
        "eb": eb,
        "ea": ea,
        "btk": btk.astype(dt_v),
        "atk": atk.astype(dt_z),
        "u2q": u2q,
        "dts": (dt_v, dt_h, dt_z),
        "bounds": (bound_v, bound_h, bound_z),
        "s_wt": float(q_wt["scale"]),
    }


_STATIC = {
    "conv2d": _static_conv2d,
    "linear": _static_linear,
    "winograd_conv2d": _static_winograd,
}


# ---------------------------------------------------------------------------
# Runtime (scale-dependent) preparation — called lazily by the kernels
# once every activation stage is frozen.  Idempotent; concurrent first
# batches race benignly (identical values, ``ready`` is written last).
# ---------------------------------------------------------------------------


def _epilogue_constants(attrs: Dict, i8: Dict, s_eff: float, bias_pending) -> None:
    """Fold dequant scale, bias, absorbed BN and ReLU into epilogue
    constants: ``y = codes · A + B`` (float out) or one more requant onto
    the consumer's input grid (integer handoff)."""
    k = (
        attrs["out_channels"]
        if "out_channels" in attrs
        else attrs["weight"].shape[0]
    )
    post = i8.get("post") or {}
    gamma = post.get("scale")
    beta = post.get("shift")
    relu = bool(post.get("relu") or attrs.get("fuse_relu"))
    a64 = np.full(k, s_eff, dtype=np.float64)
    b64 = np.zeros(k, dtype=np.float64)
    if gamma is not None:
        a64 *= gamma.astype(np.float64)
    if bias_pending is not None:
        b64 += bias_pending.astype(np.float64) * (
            gamma.astype(np.float64) if gamma is not None else 1.0
        )
    if beta is not None:
        b64 += beta.astype(np.float64)
    has_b = bool(np.any(b64))
    emit_q = i8.get("emit_q")
    if emit_q is not None:
        s_next = float(emit_q["scale"])
        qmax_next = float(emit_q["qmax"])
        i8["epi"] = {
            "mode": "int",
            "A": (a64 / s_next).astype(np.float32),
            "B": (b64 / s_next).astype(np.float32) if has_b else None,
            "lo": 0.0 if relu else -qmax_next,
            "hi": qmax_next,
        }
    else:
        i8["epi"] = {
            "mode": "float",
            "A": a64.astype(np.float32),
            "B": b64.astype(np.float32) if has_b else None,
            "relu": relu,
        }


def _runtime_conv_linear(attrs: Dict) -> None:
    i8 = attrs["i8"]
    d = float(attrs["q_input"]["scale"]) * i8["s_w"]
    q_out = attrs.get("q_output")
    bias = attrs.get("bias")
    if q_out is not None:
        # bias is added before the output stage (QuantConv2d/QuantLinear
        # order), so it rides inside the requant, scaled onto the grid.
        i8["rq_out"] = {
            "d": d,
            "bias": bias.astype(np.float32) if bias is not None else None,
            "q": q_out,
        }
        _epilogue_constants(attrs, i8, float(q_out["scale"]), None)
    else:
        i8["rq_out"] = None
        _epilogue_constants(attrs, i8, d, bias)
    i8["ready"] = True


def _runtime_winograd(attrs: Dict) -> None:
    i8 = attrs["i8"]
    s_x = float(attrs["q_input"]["scale"])
    s_v = float(attrs["q_input_t"]["scale"])
    s_h = float(attrs["q_hadamard"]["scale"])
    if i8.get("per_tap"):
        # Per-tap transform-domain grids (see enable_per_tap): v codes of
        # tap (i, j) live on the dyadically finer ``s_v · 2^fv[i,j]``
        # grid, Hadamard codes on ``s_h · 2^fh[i,j]``.  The requant
        # multipliers carry both grids, stored in the accumulator dtypes
        # so the elementwise requant keeps the accumulators' own ufunc
        # loops (a float64 multiplier array would silently drag every
        # float32 requant through float64 loops); the folded atk (columns
        # scaled by 2^(fh - min fh)) leaves the output-transform
        # accumulator on the uniform ``2^min(fh)`` grid.
        t = attrs["t"]
        dt_v, dt_h = i8["dts"][0], i8["dts"][1]
        fv, fh = i8["tap_fv"], i8["tap_fh"]
        i8["d_v"] = np.ldexp(s_x / 4.0 ** i8["eb"], -fv).reshape(-1, 1).astype(dt_v)
        i8["d_h"] = (
            np.ldexp(s_v * i8["s_wt"], fv - fh).reshape(t, t, 1, 1, 1).astype(dt_h)
        )
        d_z = float(np.ldexp(s_h, int(fh.min()))) / 4.0 ** i8["ea"]
    else:
        i8["d_v"] = s_x / 4.0 ** i8["eb"]
        i8["d_h"] = s_v * i8["s_wt"]
        d_z = s_h / 4.0 ** i8["ea"]
    q_out = attrs.get("q_output")
    if q_out is not None:
        i8["rq_out"] = {"d": d_z, "bias": None, "q": q_out}
        s_eff = float(q_out["scale"])
    else:
        i8["rq_out"] = None
        s_eff = d_z
    # Winograd applies bias *after* the output quantization stage.
    _epilogue_constants(attrs, i8, s_eff, attrs.get("bias"))
    i8["ready"] = True


def prepare_runtime(op: str, attrs: Dict) -> None:
    if op == "winograd_conv2d":
        _runtime_winograd(attrs)
    else:
        _runtime_conv_linear(attrs)


def enable_per_tap(step) -> bool:
    """Switch a frozen Winograd step to per-tap transform-domain scales.

    Tap-wise transform-domain quantization ("Going Further With Winograd
    Convolutions"): the taps of ``BᵀdB`` have very different dynamic
    ranges — tap ``(i, j)``'s accumulator is bounded by the L1 norm of
    row ``i·t+j`` of the integer Kronecker matrix — so a single scalar
    scale wastes code-range resolution on the narrow taps.  This gives
    each tap a *dyadically* finer grid ``scale · 2^f`` (``f ≤ 0``) for
    the ``q_input_t`` and ``q_hadamard`` stages, paired with a widened
    per-tap clip ceiling ``qmax · 2^-f`` so every tap keeps the stage's
    full calibrated range ``scale · qmax``: narrow taps gain fractional
    bits, and no value a uniform grid could represent ever clips — the
    refinement can only reduce rounding error, never introduce new
    saturation.

    * the grids cost nothing at run time — the per-tap factors ride the
      existing requant multipliers (``d_v``/``d_h`` and the clip
      ceilings become tap-shaped arrays broadcasting over the same
      layouts);
    * exactness against the int64 oracle is preserved by construction:
      powers of two are exact in float, and the accumulators the wider
      codes *do* grow — the Hadamard contraction and the output
      transform, whose columns absorb ``2^(fh - min fh)`` — are
      re-proven by :func:`_pick_dtype` before anything is committed.

    Returns ``True`` when per-tap grids were enabled (or already were).
    Returns ``False`` — leaving the step on uniform scales — when the
    step is ineligible, every tap already spans the full range, or a
    grown accumulator cannot be bounded in an exact float dtype.
    """
    attrs = step.attrs
    i8 = attrs.get("i8")
    if not (i8 and i8.get("ok") and "btk" in i8):
        return False
    if i8.get("per_tap"):
        return True
    if not _all_frozen(step):
        return False
    t = attrs["t"]
    tt = t * t
    qv, qh = _qmax(attrs["q_input_t"]), _qmax(attrs["q_hadamard"])
    # Refinement budget per tap: how far its worst-case accumulator sits
    # below the widest tap's (btk row L1 for the input transform; weight-
    # code L1 over the contraction axis, worst case across groups and
    # out-channels, for the Hadamard stage).
    l1_v = np.abs(i8["btk"].astype(np.float64)).sum(axis=1)
    fv = np.ceil(np.log2(l1_v / l1_v.max())).astype(np.int64)
    np.clip(fv, -_PER_TAP_MAX_SHIFT, 0, out=fv)
    w1 = (
        np.abs(i8["u2q"].astype(np.float64)).sum(axis=4).max(axis=(2, 3)).reshape(tt)
    )
    w1 = np.maximum(w1, 1.0)
    fh = np.ceil(np.log2(w1 / w1.max())).astype(np.int64)
    np.clip(fh, -_PER_TAP_MAX_SHIFT, 0, out=fh)
    if not (np.any(fv) or np.any(fh)):
        return False  # uniform tap ranges: nothing to refine
    # Re-prove the grown accumulators.  v codes now reach qv·2^-fv, so
    # the Hadamard bound is the worst per-tap (weight L1) × (v ceiling)
    # product; h codes reach qh·2^-fh, and folding 2^(fh - min fh) into
    # the output-transform columns leaves its accumulator on the uniform
    # 2^min(fh) grid with bound |atk|·2^-min(fh) · qh.
    qmax_v = np.ldexp(float(qv), -fv)
    qmax_h = np.ldexp(float(qh), -fh)
    bound_h = float(np.max(w1 * qmax_v))
    dt_h = _pick_dtype(bound_h)
    if dt_h is None:
        return False
    atk64 = i8["atk"].astype(np.float64)
    atk = atk64 * np.exp2(fh - fh.min())[None, :]
    bound_z = float(np.abs(atk64).sum(axis=1).max()) * float(
        np.ldexp(float(qh), -int(fh.min()))
    )
    dt_z = _pick_dtype(bound_z)
    if dt_z is None:
        return False  # folded accumulator unprovable: keep uniform scales
    dt_v = i8["dts"][0]
    i8["atk"] = atk.astype(dt_z)
    i8["u2q"] = np.ascontiguousarray(i8["u2q"].astype(dt_h))
    i8["dts"] = (dt_v, dt_h, dt_z)
    i8["bounds"] = (i8["bounds"][0], bound_h, bound_z)
    i8["tap_fv"] = fv
    i8["tap_fh"] = fh
    # Clip ceilings in the accumulator dtypes (exact: qmax · 2^-f stays
    # within the float32 integer range for f ≥ -_PER_TAP_MAX_SHIFT), for
    # the same ufunc-loop reason as the multipliers in _runtime_winograd.
    i8["qmax_v"] = qmax_v.reshape(-1, 1).astype(dt_v)
    i8["qmax_h"] = qmax_h.reshape(t, t, 1, 1, 1).astype(dt_h)
    i8["per_tap"] = True
    _runtime_winograd(attrs)
    return True


# ---------------------------------------------------------------------------
# The compile pass: static prep + junction fusion
# ---------------------------------------------------------------------------


def _count_uses(steps: List, output_reg: int) -> Dict[int, int]:
    counts: Dict[int, int] = {output_reg: 1}
    for step in steps:
        for reg in step.inputs:
            counts[reg] = counts.get(reg, 0) + 1
    return counts


def _absorb_affines(steps: List, output_reg: int) -> List:
    """Fold a single-use trailing ``affine`` (eval BatchNorm, possibly
    with a fused ReLU) into the int8 epilogue of its producer."""
    counts = _count_uses(steps, output_reg)
    producers: Dict[int, object] = {}
    out: List = []
    for step in steps:
        producer = producers.get(step.inputs[0]) if step.inputs else None
        if (
            step.op == "affine"
            and producer is not None
            and producer.op in INT8_OPS
            and producer.attrs.get("i8", {}).get("ok")
            and "post" not in producer.attrs["i8"]
            and not producer.attrs.get("fuse_relu")
            and counts[producer.output] == 1
        ):
            producer.attrs["i8"]["post"] = {
                "scale": step.attrs["scale"],
                "shift": step.attrs["shift"],
                "relu": bool(step.attrs.get("fuse_relu")),
            }
            producers.pop(producer.output, None)
            producer.output = step.output
            producer.label = (producer.label + " +bn").strip()
            producers[producer.output] = producer
            continue
        out.append(step)
        producers[step.output] = step
    return out


def _wire_handoffs(steps: List, output_reg: int) -> None:
    """Mark producer→consumer pairs that exchange integer codes."""
    counts = _count_uses(steps, output_reg)
    consumers: Dict[int, List] = {}
    for step in steps:
        for reg in step.inputs:
            consumers.setdefault(reg, []).append(step)
    for producer in steps:
        i8p = producer.attrs.get("i8")
        if not (i8p and i8p.get("ok")) or producer.op not in INT8_OPS:
            continue
        if not _all_frozen(producer):
            continue
        reg = producer.output
        consumer = None
        while counts.get(reg, 0) == 1 and reg != output_reg:
            users = consumers.get(reg, [])
            if len(users) != 1:
                break
            candidate = users[0]
            if candidate.op in PASSTHROUGH_OPS and candidate.inputs == (reg,):
                reg = candidate.output
                continue
            consumer = candidate
            break
        if consumer is None or consumer.op not in INT8_OPS:
            continue
        i8c = consumer.attrs.get("i8")
        if not (i8c and i8c.get("ok")) or consumer.inputs != (reg,):
            continue
        if not _all_frozen(consumer):
            continue
        q_in = consumer.attrs.get("q_input")
        if not (isinstance(q_in, dict) and "scale" in q_in):
            continue
        i8p["emit_q"] = q_in  # shared dict: producer clips to this grid
        i8c["input_prequantized"] = True
        producer.label = (producer.label + " →int").strip()
        consumer.label = ("int→ " + consumer.label).strip()


def finalize_int8(steps: List, output_reg: int) -> List:
    """Prepare every eligible step for native integer execution.

    Mutates step attrs in place (adding the ``i8`` dict) and returns the
    new step list with absorbed ``affine`` steps removed.  Steps left
    without an ``i8`` dict (or with none at all on float models) simply
    execute through the ``turbo`` → ``fast`` → ``reference`` fallback
    kernels — compilation never fails on ineligible layers.
    """
    for step in steps:
        if step.op in _STATIC and step.attrs.get("quantized"):
            i8 = _STATIC[step.op](step.attrs)
            if i8 is not None:
                step.attrs["i8"] = i8
                step.domain = "int8"
    steps = _absorb_affines(steps, output_reg)
    _wire_handoffs(steps, output_reg)
    # Eagerly prepare fully-frozen steps so warm plans are ready-to-run
    # (cold steps prepare lazily after their first batch froze ranges).
    for step in steps:
        i8 = step.attrs.get("i8")
        if i8 and i8.get("ok") and _all_frozen(step):
            prepare_runtime(step.op, step.attrs)
    return steps
