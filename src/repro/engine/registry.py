"""The inference-kernel registry.

Every plan step names an *op type* ("conv2d", "winograd_conv2d", ...);
the registry maps ``(op, backend)`` to the callable that executes it.
Two backends ship with the engine:

* ``reference`` — mirrors the eager eval-mode computation operation for
  operation (the correctness oracle);
* ``fast`` — the optimised deployment path, still faithful to eager's
  quantization-grid decisions (quantized Winograd keeps eager's nested
  transform order);
* ``turbo`` — ``fast`` plus numerics-relaxed quantized Winograd: the
  Kronecker-form tile transforms apply to quantized steps too, so values
  sitting exactly on a quantization-bin boundary may snap differently
  than eager.  The quantized pipeline structure (every stage, frozen
  ranges) is unchanged — the grid decisions are equally valid
  quantizations, just not bit-matched to the training-time fake-quant,
  the same trade production int8 engines make against their training
  frameworks;
* ``int8`` — native integer-arithmetic execution of quantized layers:
  activations are quantized to integer codes once, the transform-domain
  and im2row GEMMs run over integer-valued arrays (exact under BLAS at
  any blocking, because every partial sum stays below the float mantissa
  bound proven at compile time), and each fake-quant stage becomes a
  fused requantization (precomputed scale product + rint/clip on the
  integer accumulator) instead of a dequantize→fake-quant round trip.
  Steps the integer path cannot take exactly (non-dyadic flex
  transforms, partially-disabled stages, accumulators past 2^53) fall
  back per step to the ``fast`` quantized kernels.

Kernel resolution falls back ``int8`` → ``turbo`` → ``fast`` →
``reference``, so an op needs one kernel to be usable and more only
where a faster implementation exists.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

#: Kernel signature: ``kernel(inputs, attrs) -> np.ndarray`` where
#: ``inputs`` is a tuple of input arrays and ``attrs`` the step's frozen
#: attribute dict (weights, scales, fusion flags, ...).
Kernel = Callable[[tuple, dict], object]

BACKENDS = ("reference", "fast", "turbo", "int8")

#: Kernel-resolution fallback chain per backend.
_FALLBACK = {"int8": "turbo", "turbo": "fast", "fast": "reference"}


class KernelRegistry:
    """Maps ``(op type, backend)`` to an inference kernel."""

    def __init__(self) -> None:
        self._kernels: Dict[Tuple[str, str], Kernel] = {}

    def register(self, op: str, backend: str = "reference") -> Callable[[Kernel], Kernel]:
        """Decorator: register ``fn`` as the ``backend`` kernel for ``op``."""
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")

        def decorator(fn: Kernel) -> Kernel:
            self._kernels[(op, backend)] = fn
            return fn

        return decorator

    def get(self, op: str, backend: str = "fast") -> Kernel:
        """Resolve a kernel along the ``int8`` → ``turbo`` → ``fast`` →
        ``reference`` fallback chain."""
        if backend not in BACKENDS:
            raise KeyError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        probe: Optional[str] = backend
        while probe is not None:
            fn = self._kernels.get((op, probe))
            if fn is not None:
                return fn
            probe = _FALLBACK.get(probe)
        raise KeyError(f"no kernel registered for op {op!r} (backend {backend!r})")

    def ops(self) -> Tuple[str, ...]:
        return tuple(sorted({op for op, _ in self._kernels}))

    def backends_for(self, op: str) -> Tuple[str, ...]:
        return tuple(b for b in BACKENDS if (op, b) in self._kernels)


#: The process-wide registry all built-in kernels register into.
registry = KernelRegistry()
register_kernel = registry.register
