"""The inference-kernel registry.

Every plan step names an *op type* ("conv2d", "winograd_conv2d", ...);
the registry maps ``(op, backend)`` to the callable that executes it.
Two backends ship with the engine:

* ``reference`` — mirrors the eager eval-mode computation operation for
  operation (the correctness oracle);
* ``fast`` — the optimised deployment path.

Ops registered only under ``reference`` are shared by both backends (the
fast backend falls back), so a new op needs one kernel to be usable and a
second only where a faster implementation exists.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

#: Kernel signature: ``kernel(inputs, attrs) -> np.ndarray`` where
#: ``inputs`` is a tuple of input arrays and ``attrs`` the step's frozen
#: attribute dict (weights, scales, fusion flags, ...).
Kernel = Callable[[tuple, dict], object]

BACKENDS = ("reference", "fast")


class KernelRegistry:
    """Maps ``(op type, backend)`` to an inference kernel."""

    def __init__(self) -> None:
        self._kernels: Dict[Tuple[str, str], Kernel] = {}

    def register(self, op: str, backend: str = "reference") -> Callable[[Kernel], Kernel]:
        """Decorator: register ``fn`` as the ``backend`` kernel for ``op``."""
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")

        def decorator(fn: Kernel) -> Kernel:
            self._kernels[(op, backend)] = fn
            return fn

        return decorator

    def get(self, op: str, backend: str = "fast") -> Kernel:
        """Resolve a kernel, falling back from ``fast`` to ``reference``."""
        if backend not in BACKENDS:
            raise KeyError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        fn = self._kernels.get((op, backend))
        if fn is None and backend != "reference":
            fn = self._kernels.get((op, "reference"))
        if fn is None:
            raise KeyError(f"no kernel registered for op {op!r} (backend {backend!r})")
        return fn

    def ops(self) -> Tuple[str, ...]:
        return tuple(sorted({op for op, _ in self._kernels}))

    def backends_for(self, op: str) -> Tuple[str, ...]:
        return tuple(b for b in BACKENDS if (op, b) in self._kernels)


#: The process-wide registry all built-in kernels register into.
registry = KernelRegistry()
register_kernel = registry.register
