"""Wall-clock measurement helpers shared by the CLI, wiNAS and benchmarks."""

from __future__ import annotations

import time
from statistics import median
from typing import Callable, List, Optional

import numpy as np


def measure_callable_ms(
    fn: Callable, *args, repeats: int = 5, warmup: int = 2
) -> float:
    """Median wall-clock of ``fn(*args)`` over ``repeats`` runs, in ms."""
    for _ in range(max(warmup, 0)):
        fn(*args)
    times: List[float] = []
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn(*args)
        times.append((time.perf_counter() - start) * 1e3)
    return float(median(times))


def measure_plan_ms(
    plan,
    x: np.ndarray,
    repeats: int = 5,
    warmup: int = 2,
    threads: Optional[int] = None,
) -> float:
    """Median wall-clock of one compiled-plan execution, in ms.

    ``threads`` is forwarded to :meth:`CompiledPlan.run` (``None`` keeps
    the plan/`REPRO_THREADS` default)."""
    if threads is None:
        return measure_callable_ms(plan.run, x, repeats=repeats, warmup=warmup)
    return measure_callable_ms(
        lambda: plan.run(x, threads=threads), repeats=repeats, warmup=warmup
    )
