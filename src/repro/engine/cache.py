"""LRU plan cache keyed by (architecture signature, input shape, quant config).

Plans freeze parameters at compile time, so the cache key must change
whenever the model's weights, buffers (BN statistics, quantizer observer
ranges) or structure change.  :func:`model_signature` folds all of that
into one digest: architecture (class names + layer hyper-parameters +
quantization config) plus a cheap content fingerprint of every parameter
and buffer.  Recompiling after a training step is therefore automatic —
the signature moves and the stale plan simply ages out of the LRU.

The backend is part of the cache key, and observer buffers are part of
the signature — which matters doubly for the ``int8`` backend: its
per-step quantized buffers (integer weight codes, requant multipliers,
integer-handoff wiring between layers) are derived from the frozen
ranges at compile time, so calibrating a model changes the signature and
transparently recompiles a plan with more of the network running native
integer arithmetic.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module

#: Structural attributes that distinguish architecturally different layers.
_ARCH_ATTRS = (
    "in_channels",
    "out_channels",
    "kernel_size",
    "stride",
    "padding",
    "groups",
    "m",
    "flex",
    "num_features",
    "eps",
    "in_features",
    "out_features",
    "bits",
)


def model_signature(model: Module) -> str:
    """Content digest of a model: architecture + quant config + weights."""
    h = hashlib.sha1()
    for name, module in model.named_modules():
        h.update(f"|{name}:{type(module).__name__}".encode())
        for attr in _ARCH_ATTRS:
            value = getattr(module, attr, None)
            if value is not None and not callable(value):
                h.update(f";{attr}={value}".encode())
        qconfig = getattr(module, "qconfig", None)
        if qconfig is not None:
            h.update(f";q={qconfig.name}:{sorted(qconfig.stage_bits.items())}".encode())
    for name, tensor in list(model.named_parameters()) + list(model.named_buffers()):
        data = tensor.data
        h.update(f"|{name}:{data.shape}".encode())
        # Hash the raw bytes: exact and order-sensitive (a permutation of
        # filters must change the digest), at memcpy-like throughput.
        h.update(np.ascontiguousarray(data).tobytes())
    return h.hexdigest()


class PlanCache:
    """A small LRU cache of compiled plans.

    Thread-safe: the inference server hits one shared cache from its
    worker pool, so lookup, insertion, eviction and the hit/miss counters
    are all guarded by one lock.  (OrderedDict.move_to_end is not atomic
    with respect to the surrounding bookkeeping.)
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, key: tuple):
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: tuple, plan) -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def keys(self):
        with self._lock:
            return list(self._plans.keys())

    def stats(self) -> dict:
        """Counters snapshot (served verbatim by the ``/metrics`` endpoint)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._plans),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def memory_stats(self) -> dict:
        """Aggregate arena footprint of every cached plan (see
        :meth:`CompiledPlan.memory_report`)."""
        with self._lock:
            plans = list(self._plans.values())
        totals = {
            "plans": len(plans),
            "arenas_built": 0,
            "arena_bytes": 0,
            "scratch_bytes": 0,
            "steady_state_allocations": 0,
        }
        for plan in plans:
            report = getattr(plan, "memory_report", None)
            if report is None:
                continue
            snap = report()
            for key in ("arenas_built", "arena_bytes", "scratch_bytes",
                        "steady_state_allocations"):
                totals[key] += snap.get(key, 0)
        return totals


#: Process-wide default cache.
plan_cache = PlanCache()


def get_cached_plan(
    model: Module,
    input_shape: Tuple[int, ...],
    backend: str = "fast",
    cache: Optional[PlanCache] = None,
):
    """Fetch (or compile and cache) the plan for ``model`` at ``input_shape``.

    The key is (model content signature, input shape, backend); the quant
    configuration is part of the signature.  Weight updates change the
    signature, so a stale plan is never served.
    """
    from repro.engine.compile import compile_model

    cache = cache if cache is not None else plan_cache
    key = (model_signature(model), tuple(input_shape), backend)
    plan = cache.get(key)
    if plan is None:
        plan = compile_model(model, backend=backend)
        # The cached path knows the input shape, so the memory planner
        # (shape inference + arena slot assignment) runs at compile time
        # here — the first run starts with its layout already decided.
        plan.prepare(tuple(input_shape))
        # Store under the *post-compile* signature: compiling a quantized
        # model with cold weight observers warms them (mutating quantizer
        # buffers), so the pre-compile key would never match again.
        cache.put((plan.signature, tuple(input_shape), backend), plan)
    return plan
