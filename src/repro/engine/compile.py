"""The compile pass: Module tree → flat execution plan.

Walks the module tree with per-class lowering rules, freezing every
parameter (copies, so later training never corrupts a plan) and
precomputing everything the eager path recomputes per forward:

* quantized weights (``Qw(w)``) with observer ranges frozen at compile
  time — weight-side observers that were never warmed up are observed
  once here, exactly what the first eager eval forward would have done;
* Winograd-transformed filters ``U = Qwt(G · Qw(g) · Gᵀ)``, cached per
  plan instead of being rebuilt every forward;
* eval-mode BatchNorm statistics.

A peephole fusion pass (``fast`` backend only) then folds BatchNorm into
the preceding convolution's weights and fuses trailing ReLUs into their
producer steps, so a ``Conv→BN→ReLU`` chain executes as one kernel.
Quantized convolutions keep BN as a separate (ReLU-fused) affine step:
folding would change the values entering the frozen quantization grid.
(The ``int8`` backend instead absorbs that affine into the layer's
integer-domain epilogue — after the frozen grids — and wires integer
handoffs between quantized layers; see :mod:`repro.engine.int8`.)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.engine.plan import CompiledPlan, Step
from repro.engine.registry import BACKENDS, registry
from repro.models.lenet import LeNet
from repro.models.resnet import BasicBlock, ResNet18
from repro.models.resnext import ResNeXt20, ResNeXtBlock
from repro.models.squeezenet import Fire, SqueezeNet
from repro.nas.mixed_op import MixedConv2d
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.qlayers import QuantConv2d, QuantLinear
from repro.quant.quantizer import Quantizer
from repro.winograd.layer import WinogradConv2d


class CompileError(RuntimeError):
    """Raised when a module cannot be lowered into a plan."""


# ---------------------------------------------------------------------------
# Quantizer freezing
# ---------------------------------------------------------------------------


def _freeze_stage(qz: Optional[Quantizer], observe: Optional[np.ndarray] = None):
    """Freeze one fake-quant stage into step attrs.

    Returns ``None`` (disabled), ``{"scale", "qmax"}`` (frozen observer)
    or ``{"dynamic_bits"}`` (activation observer never warmed up — the
    kernel takes the range from the batch, mirroring eager's fallback).
    Weight-side stages pass ``observe``: their input is known at compile
    time, so an uninitialised observer is warmed exactly as the first
    eager eval forward would have done.
    """
    if qz is None or not qz.enabled:
        return None
    if not bool(qz.initialized.data[0]):
        if observe is None:
            return {"dynamic_bits": qz.bits}
        qz.observe(observe)
    return {"scale": qz.scale, "qmax": float(2 ** (qz.bits - 1) - 1)}


def _compile_fq(arr: np.ndarray, q) -> np.ndarray:
    from repro.engine.kernels import fake_quant

    return fake_quant(arr, q)


def _pair(v) -> Tuple[int, int]:
    return (v, v) if isinstance(v, int) else tuple(v)


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

Handler = Callable[["_Lowerer", Module, int], int]
_LOWERING: Dict[Type[Module], Handler] = {}


def lowers(*types: Type[Module]):
    def decorator(fn: Handler) -> Handler:
        for t in types:
            _LOWERING[t] = fn
        return fn

    return decorator


class _Lowerer:
    def __init__(self, backend: str):
        self.backend = backend
        self.steps: List[Step] = []
        self.next_reg = 1  # register 0 holds the plan input

    def new_reg(self) -> int:
        reg = self.next_reg
        self.next_reg += 1
        return reg

    def emit(self, op: str, inputs: Tuple[int, ...], attrs=None, label: str = "") -> int:
        out = self.new_reg()
        self.steps.append(Step(op, tuple(inputs), out, attrs or {}, label))
        return out

    def lower(self, module: Module, reg: int) -> int:
        for klass in type(module).__mro__:
            handler = _LOWERING.get(klass)
            if handler is not None:
                return handler(self, module, reg)
        # Unknown module: run its eager forward as one opaque step so
        # compilation stays total (no fusion/caching inside it).
        return self.emit(
            "eager_module", (reg,), {"module": module}, label=type(module).__name__
        )


# -- trivial / shape ops -----------------------------------------------------


@lowers(Identity)
def _lower_identity(lw, module, reg):
    return reg


@lowers(ReLU)
def _lower_relu(lw, module, reg):
    return lw.emit("relu", (reg,))


@lowers(Flatten)
def _lower_flatten(lw, module, reg):
    return lw.emit("flatten", (reg,))


@lowers(MaxPool2d)
def _lower_max_pool(lw, module, reg):
    kernel = _pair(module.kernel_size)
    stride = kernel if module.stride is None else _pair(module.stride)
    return lw.emit("max_pool", (reg,), {"kernel": kernel, "stride": stride})


@lowers(AvgPool2d)
def _lower_avg_pool(lw, module, reg):
    kernel = _pair(module.kernel_size)
    stride = kernel if module.stride is None else _pair(module.stride)
    return lw.emit("avg_pool", (reg,), {"kernel": kernel, "stride": stride})


@lowers(GlobalAvgPool2d)
def _lower_gap(lw, module, reg):
    return lw.emit("global_avg_pool", (reg,))


@lowers(Sequential)
def _lower_sequential(lw, module, reg):
    for child in module:
        reg = lw.lower(child, reg)
    return reg


# -- BatchNorm ---------------------------------------------------------------


@lowers(BatchNorm2d)
def _lower_batchnorm(lw, module, reg):
    mean = module.running_mean.data.copy()
    var = module.running_var.data.copy()
    gamma = module.weight.data.copy()
    beta = module.bias.data.copy()
    # Mirror eager eval: (var + eps) ** -0.5 entirely in float32.
    inv_std = (var + np.float32(module.eps)) ** -0.5
    scale = gamma * inv_std
    attrs = {
        "mean": mean,
        "inv_std": inv_std,
        "gamma": gamma,
        "beta": beta,
        "scale": scale,
        "shift": beta - mean * scale,
    }
    return lw.emit("affine", (reg,), attrs, label="bn")


# -- Linear ------------------------------------------------------------------


@lowers(Linear)
def _lower_linear(lw, module, reg):
    attrs = {
        "weight": module.weight.data.copy(),
        "bias": module.bias.data.copy() if module.bias is not None else None,
    }
    return lw.emit("linear", (reg,), attrs)


@lowers(QuantLinear)
def _lower_quant_linear(lw, module, reg):
    linear = module.linear
    qw = _freeze_stage(module.q_weight, observe=linear.weight.data)
    attrs = {
        "weight": _compile_fq(linear.weight.data.copy(), qw),
        "bias": linear.bias.data.copy() if linear.bias is not None else None,
        "q_input": _freeze_stage(module.q_input),
        "q_output": _freeze_stage(module.q_output),
        "q_weight": qw,  # weight-grid stage (int8 backend recovers codes)
        "quantized": True,
    }
    return lw.emit("linear", (reg,), attrs, label=f"q={module.qconfig.name}")


# -- Convolutions ------------------------------------------------------------


def _conv_attrs(conv: Conv2d, weight: np.ndarray) -> dict:
    return {
        "weight": weight,
        "bias": conv.bias.data.copy() if conv.bias is not None else None,
        "stride": _pair(conv.stride),
        "padding": _pair(conv.padding),
        "groups": conv.groups,
    }


@lowers(Conv2d)
def _lower_conv2d(lw, module, reg):
    return lw.emit("conv2d", (reg,), _conv_attrs(module, module.weight.data.copy()))


@lowers(QuantConv2d)
def _lower_quant_conv2d(lw, module, reg):
    conv = module.conv
    qw = _freeze_stage(module.q_weight, observe=conv.weight.data)
    attrs = _conv_attrs(conv, _compile_fq(conv.weight.data.copy(), qw))
    attrs.update(
        q_input=_freeze_stage(module.q_input),
        q_output=_freeze_stage(module.q_output),
        q_weight=qw,  # weight-grid stage (int8 backend recovers codes)
        quantized=True,
    )
    return lw.emit("conv2d", (reg,), attrs, label=f"q={module.qconfig.name}")


@lowers(WinogradConv2d)
def _lower_winograd(lw, module, reg):
    """Freeze a Winograd layer with its filter transform precomputed.

    ``U = Qwt(G · Qw(g) · Gᵀ)`` is evaluated here, once per plan, with
    exactly the array values and operation order of the eager forward —
    the cached result is bit-identical to what eager recomputes each
    call.
    """
    qw = _freeze_stage(module.q_weight, observe=module.weight.data)
    w = _compile_fq(module.weight.data.copy(), qw)
    G = module.G.data.copy()
    u = np.matmul(np.matmul(G, w), G.transpose())
    qwt = _freeze_stage(module.q_weight_t, observe=u)
    u = _compile_fq(u, qwt)

    q_input = _freeze_stage(module.q_input)
    q_input_t = _freeze_stage(module.q_input_t)
    q_hadamard = _freeze_stage(module.q_hadamard)
    q_output = _freeze_stage(module.q_output)
    quantized = any(
        q is not None for q in (qw, qwt, q_input, q_input_t, q_hadamard, q_output)
    )
    attrs = {
        "u": u,
        "BT": module.BT.data.copy(),
        "AT": module.AT.data.copy(),
        "bias": module.bias.data.copy() if module.bias is not None else None,
        "m": module.m,
        "r": module.kernel_size,
        "t": module.t,
        "groups": module.groups,
        "out_channels": module.out_channels,
        "pad": module.padding,
        "q_input": q_input,
        "q_input_t": q_input_t,
        "q_hadamard": q_hadamard,
        "q_output": q_output,
        "q_weight": qw,  # weight-grid stages (int8 backend recovers codes)
        "q_weight_t": qwt,
        "quantized": quantized,
    }
    label = f"F({module.m},{module.kernel_size})@{module.qconfig.name}"
    return lw.emit("winograd_conv2d", (reg,), attrs, label=label)


@lowers(MixedConv2d)
def _lower_mixed(lw, module, reg):
    """Lower a NAS mixed op to its argmax candidate (eval semantics).

    A ``record_hw`` step first writes ``last_input_hw`` on the mixed op
    so latency-table consumers (wiNAS) see the same shape metadata a
    probe through the eager model would have left behind.
    """
    reg = lw.emit("record_hw", (reg,), {"modules": [module]}, label="mixed-op probe")
    return lw.lower(module.paths[module.argmax_index()], reg)


# -- whole models ------------------------------------------------------------


@lowers(LeNet)
def _lower_lenet(lw, module, reg):
    reg = lw.lower(module.conv1, reg)
    if module.bn1 is not None:
        reg = lw.lower(module.bn1, reg)
    reg = lw.emit("relu", (reg,))
    reg = lw.lower(module.pool1, reg)
    reg = lw.lower(module.conv2, reg)
    if module.bn2 is not None:
        reg = lw.lower(module.bn2, reg)
    reg = lw.emit("relu", (reg,))
    reg = lw.lower(module.pool2, reg)
    reg = lw.emit("flatten", (reg,))
    reg = lw.lower(module.fc1, reg)
    reg = lw.emit("relu", (reg,))
    reg = lw.lower(module.fc2, reg)
    reg = lw.emit("relu", (reg,))
    return lw.lower(module.fc3, reg)


@lowers(BasicBlock)
def _lower_basic_block(lw, module, reg):
    if module.pool is not None:
        reg = lw.lower(module.pool, reg)
    out = lw.lower(module.conv1, reg)
    out = lw.lower(module.bn1, out)
    out = lw.emit("relu", (out,))
    out = lw.lower(module.conv2, out)
    out = lw.lower(module.bn2, out)
    if module.shortcut_conv is not None:
        shortcut = lw.lower(module.shortcut_conv, reg)
        shortcut = lw.lower(module.shortcut_bn, shortcut)
    else:
        shortcut = reg
    out = lw.emit("add", (out, shortcut))
    return lw.emit("relu", (out,))


@lowers(ResNet18)
def _lower_resnet18(lw, module, reg):
    reg = lw.lower(module.stem, reg)
    reg = lw.lower(module.stem_bn, reg)
    reg = lw.emit("relu", (reg,))
    for block in module.blocks:
        reg = lw.lower(block, reg)
    reg = lw.emit("global_avg_pool", (reg,))
    return lw.lower(module.fc, reg)


@lowers(Fire)
def _lower_fire(lw, module, reg):
    s = lw.lower(module.squeeze, reg)
    s = lw.emit("relu", (s,))
    e1 = lw.lower(module.expand1, s)
    e3 = lw.lower(module.expand3, s)
    cat = lw.emit("concat", (e1, e3), {"axis": 1})
    cat = lw.lower(module.bn, cat)
    return lw.emit("relu", (cat,))


@lowers(SqueezeNet)
def _lower_squeezenet(lw, module, reg):
    reg = lw.lower(module.stem, reg)
    reg = lw.lower(module.stem_bn, reg)
    reg = lw.emit("relu", (reg,))
    for i, fire in enumerate(module.fires):
        reg = lw.lower(fire, reg)
        if i in module.pool_after:
            reg = lw.lower(module.pool, reg)
    reg = lw.lower(module.classifier, reg)
    return lw.emit("global_avg_pool", (reg,))


@lowers(ResNeXtBlock)
def _lower_resnext_block(lw, module, reg):
    if module.pool is not None:
        reg = lw.lower(module.pool, reg)
    out = lw.lower(module.reduce, reg)
    out = lw.lower(module.bn1, out)
    out = lw.emit("relu", (out,))
    out = lw.lower(module.conv3, out)
    out = lw.lower(module.bn2, out)
    out = lw.emit("relu", (out,))
    out = lw.lower(module.expand, out)
    out = lw.lower(module.bn3, out)
    if module.shortcut_conv is not None:
        shortcut = lw.lower(module.shortcut_conv, reg)
        shortcut = lw.lower(module.shortcut_bn, shortcut)
    else:
        shortcut = reg
    out = lw.emit("add", (out, shortcut))
    return lw.emit("relu", (out,))


@lowers(ResNeXt20)
def _lower_resnext20(lw, module, reg):
    reg = lw.lower(module.stem, reg)
    reg = lw.lower(module.stem_bn, reg)
    reg = lw.emit("relu", (reg,))
    for block in module.blocks:
        reg = lw.lower(block, reg)
    reg = lw.emit("global_avg_pool", (reg,))
    return lw.lower(module.fc, reg)


# ---------------------------------------------------------------------------
# Fusion (fast / turbo backends)
# ---------------------------------------------------------------------------

_FOLDABLE = ("conv2d", "winograd_conv2d")
_RELU_FUSABLE = ("conv2d", "winograd_conv2d", "affine", "add", "linear")


def _use_counts(steps: List[Step], output_reg: int) -> Dict[int, int]:
    counts: Dict[int, int] = {output_reg: 1}
    for step in steps:
        for reg in step.inputs:
            counts[reg] = counts.get(reg, 0) + 1
    return counts


def _fold_bn(producer: Step, affine: Step) -> None:
    """Fold an eval-mode BN into the producer conv's weights/bias."""
    scale = affine.attrs["scale"]
    shift = affine.attrs["shift"]
    if producer.op == "conv2d":
        producer.attrs["weight"] = producer.attrs["weight"] * scale[:, None, None, None]
    else:  # winograd: scaling U per out-channel scales Aᵀ(U⊙V)A linearly
        producer.attrs["u"] = producer.attrs["u"] * scale[:, None, None, None]
    bias = producer.attrs.get("bias")
    producer.attrs["bias"] = shift if bias is None else scale * bias + shift
    producer.label = (producer.label + " +bn").strip()


def _fuse(steps: List[Step], output_reg: int, backend: str) -> List[Step]:
    if backend == "reference":
        return steps
    producers: Dict[int, Step] = {}

    # Pass 1: fold BN into the preceding float conv (single-use output).
    counts = _use_counts(steps, output_reg)
    fused: List[Step] = []
    for step in steps:
        producer = producers.get(step.inputs[0]) if step.inputs else None
        if (
            step.op == "affine"
            and producer is not None
            and producer.op in _FOLDABLE
            and not producer.attrs.get("quantized")
            and counts[producer.output] == 1
        ):
            _fold_bn(producer, step)
            producers.pop(producer.output, None)
            producer.output = step.output
            producers[producer.output] = producer
            continue
        fused.append(step)
        producers[step.output] = step

    # Pass 2: fuse trailing ReLUs into their producer step (single use).
    counts = _use_counts(fused, output_reg)
    producers = {}
    out: List[Step] = []
    for step in fused:
        producer = producers.get(step.inputs[0]) if step.inputs else None
        if (
            step.op == "relu"
            and producer is not None
            and producer.op in _RELU_FUSABLE
            and not producer.attrs.get("fuse_relu")
            and counts[producer.output] == 1
        ):
            producer.attrs["fuse_relu"] = True
            producers.pop(producer.output, None)
            producer.output = step.output
            producers[producer.output] = producer
            continue
        out.append(step)
        producers[step.output] = step
    return out


def _finalize_fast(steps: List[Step], backend: str = "fast") -> None:
    """Precompute the fast kernels' GEMM-ready weight layouts."""
    for step in steps:
        if step.op == "conv2d":
            w = step.attrs["weight"]
            k, cg, kh, kw = w.shape
            g = step.attrs["groups"]
            if (
                kh == 1
                and kw == 1
                and g == 1
                and step.attrs["stride"] == (1, 1)
                and step.attrs["padding"] == (0, 0)
            ):
                step.attrs["wmat"] = np.ascontiguousarray(w.reshape(k, cg))
            elif g == 1:
                step.attrs["wmat"] = np.ascontiguousarray(
                    w.reshape(k, cg * kh * kw).transpose()
                )
            else:
                step.attrs["wmat"] = np.ascontiguousarray(
                    np.transpose(w.reshape(g, k // g, cg * kh * kw), (0, 2, 1))
                )
        elif step.op == "winograd_conv2d":
            u = step.attrs["u"]
            k = step.attrs["out_channels"]
            g = step.attrs["groups"]
            t = step.attrs["t"]
            cg = u.shape[1]
            step.attrs["u2"] = np.ascontiguousarray(
                np.transpose(u.reshape(g, k // g, cg, t, t), (3, 4, 0, 1, 2))
            )
            # Kronecker forms of the tile transforms: Bᵀ d B over a t×t
            # tile is one (t², t²) matrix applied to the flattened tile,
            # so the whole batch's input/output transforms each become a
            # single large GEMM instead of per-tile t×t matmuls.  Two
            # exclusions keep the nested form instead:
            # * t > 8 (F(6, 5)) — the one-shot t² product sum loses too
            #   much precision against the ill-conditioned large-tile
            #   Cook–Toom transforms;
            # * quantized steps on the ``fast`` backend — a fake-quant
            #   stage snaps the transformed tiles to a grid, and the kron
            #   reassociation can flip values sitting on bin boundaries;
            #   through a deep int8 network one flip avalanches, so
            #   ``fast`` keeps eager's exact operation order there.
            #   ``turbo`` opts into the reassociated grid decisions for
            #   throughput (see repro.engine.registry docs).
            if t <= 8 and (backend == "turbo" or not step.attrs.get("quantized")):
                BT, AT = step.attrs["BT"], step.attrs["AT"]
                step.attrs["btk"] = np.ascontiguousarray(np.kron(BT, BT).transpose())
                step.attrs["atk"] = np.ascontiguousarray(np.kron(AT, AT).transpose())


# ---------------------------------------------------------------------------
# Transform-domain residency
# ---------------------------------------------------------------------------


def _residency_float_edge(producer: Step, consumer: Step) -> Optional[dict]:
    """Eligibility + edge dict for a float (fast/turbo) resident pair.

    Requires the Kronecker tile transforms on both steps and declines
    quantized steps entirely: on ``fast`` a quantized step has no ``btk``
    by design (grid-order preservation), and declining on ``turbo`` too
    keeps the turbo ≡ fast bit-identity contract intact.
    """
    for step in (producer, consumer):
        if step.domain != "float" or step.attrs.get("quantized"):
            return None
        if step.attrs.get("btk") is None or step.attrs.get("atk") is None:
            return None
    return {
        "m": consumer.attrs["m"],
        "r": consumer.attrs["r"],
        "t": consumer.attrs["t"],
        "pad": consumer.attrs["pad"],
        "q_input": consumer.attrs.get("q_input"),
        "q_input_t": consumer.attrs.get("q_input_t"),
        "btk": consumer.attrs["btk"],
    }


def _residency_int8_edge(producer: Step, consumer: Step) -> Optional[dict]:
    """Eligibility + edge dict for an int8 resident pair.

    Both steps must run natively (``i8.ok`` with the integer Kronecker
    transforms), every quantization range must be frozen, and the
    integer handoff must already be wired *directly* between the two —
    the producer's epilogue then emits codes on the consumer's input
    grid, so its resident tail can tile integer codes straight into the
    consumer's ``q_input_t`` requant.
    """
    from repro.engine.int8 import _all_frozen

    i8p = producer.attrs.get("i8")
    i8c = consumer.attrs.get("i8")
    if not (i8p and i8p.get("ok") and "btk" in i8p):
        return None
    if not (i8c and i8c.get("ok") and "btk" in i8c):
        return None
    if not (_all_frozen(producer) and _all_frozen(consumer)):
        return None
    if i8p.get("emit_q") is None or i8p["emit_q"] is not consumer.attrs.get("q_input"):
        return None
    if not i8c.get("input_prequantized"):
        return None
    return {
        "m": consumer.attrs["m"],
        "r": consumer.attrs["r"],
        "t": consumer.attrs["t"],
        "pad": consumer.attrs["pad"],
        "q_input_t": consumer.attrs["q_input_t"],
        "i8": i8c,
    }


def _plan_residency(steps: List[Step], output_reg: int, backend: str) -> int:
    """Keep consecutive Winograd convolutions resident in the transform
    domain where the algebra allows it.

    For each directly adjacent, single-use ``winograd_conv2d`` →
    ``winograd_conv2d`` pair (dense, stride-1 by construction), annotate
    the producer with ``resident_out`` and the consumer with
    ``resident_src`` — one *shared* dict, whose identity survives
    artifact round-trips like the int8 ``emit_q`` handoff does.  The
    producer's kernel then runs the consumer's input stages + forward
    tile transform as its epilogue tail and writes a tap tensor into its
    planned register — ``(N, C, th, tw, t, t)`` on float edges, ``(N, t,
    t, C, th, tw)`` on int8 edges (the batched integer GEMM's own
    layout); the consumer skips its prologue entirely.  Epilogues (fused ReLU, folded/absorbed BN, bias,
    every quantization stage) are preserved bit-for-bit because the
    operation sequence is unchanged — only the spatial round trip
    through an intermediate register (and its copies) disappears.

    On the int8 backend the pair additionally switches to per-tap
    transform-domain scale grids where provable (see
    :func:`repro.engine.int8.enable_per_tap`).  Returns the number of
    edges wired.
    """
    if backend not in ("fast", "turbo", "int8"):
        return 0
    from repro.engine.int8 import enable_per_tap

    counts = _use_counts(steps, output_reg)
    producer_of: Dict[int, Step] = {s.output: s for s in steps}
    wired = 0
    for consumer in steps:
        if consumer.op != "winograd_conv2d" or len(consumer.inputs) != 1:
            continue
        producer = producer_of.get(consumer.inputs[0])
        if producer is None or producer.op != "winograd_conv2d":
            continue
        if counts.get(producer.output, 0) != 1 or producer.output == output_reg:
            continue
        if "resident_out" in producer.attrs or "resident_src" in consumer.attrs:
            continue
        if producer.attrs["groups"] != 1 or consumer.attrs["groups"] != 1:
            continue
        if consumer.domain == "int8" or producer.domain == "int8":
            ro = _residency_int8_edge(producer, consumer)
            if ro is not None:
                ro["per_tap"] = enable_per_tap(consumer) and enable_per_tap(producer)
        else:
            ro = _residency_float_edge(producer, consumer)
        if ro is None:
            continue
        producer.attrs["resident_out"] = ro
        consumer.attrs["resident_src"] = ro
        producer.label = (producer.label + " >tap").strip()
        consumer.label = ("tap> " + consumer.label).strip()
        wired += 1
    return wired


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def compile_model(
    model: Module, backend: str = "fast", residency: bool = True
) -> CompiledPlan:
    """Compile a module into an autograd-free :class:`CompiledPlan`.

    The plan freezes eval-mode semantics: BN uses running statistics and
    quantizers use their frozen observer ranges regardless of the
    module's ``training`` flag.  Parameters are copied — mutating the
    model afterwards does not affect the plan (recompile, or go through
    :func:`repro.engine.cache.get_cached_plan`, which keys on a content
    signature).
    """
    if backend not in BACKENDS:
        raise CompileError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    from repro.engine.cache import model_signature

    lowerer = _Lowerer(backend)
    output_reg = lowerer.lower(model, 0)
    if not lowerer.steps:
        raise CompileError(f"{type(model).__name__} lowered to an empty plan")
    steps = _fuse(lowerer.steps, output_reg, backend)
    if backend in ("fast", "turbo", "int8"):
        # The int8 backend keeps the fast layouts too: they serve float
        # steps and the per-step fallback path (cold observers, flex
        # transforms).  Quantized Winograd steps keep the nested (eager
        # grid order) form there, so lazily-frozen ranges match eager.
        _finalize_fast(steps, "fast" if backend == "int8" else backend)
    if backend == "int8":
        from repro.engine.int8 import finalize_int8

        steps = finalize_int8(steps, output_reg)
    if residency:
        _plan_residency(steps, output_reg, backend)
    for step in steps:
        step.fn = registry.get(step.op, backend)
    return CompiledPlan(
        steps=steps,
        num_regs=lowerer.next_reg,
        input_reg=0,
        output_reg=output_reg,
        backend=backend,
        signature=model_signature(model),
        source=type(model).__name__,
    )
