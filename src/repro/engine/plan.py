"""The execution plan IR and its zero-allocation parallel executor.

A compiled plan is a flat list of :class:`Step`s over a register file:
each step reads input registers, calls its kernel, and writes one output
register.  No autograd graph is built; every array is a plain
``np.ndarray`` and parameters were frozen (and pre-transformed) at
compile time.

Two executor-level upgrades ride on that IR (see
:mod:`repro.engine.memplan` and :mod:`repro.engine.pool`):

* a **memory plan** — registers are assigned liveness-disjoint arena
  slots at compile time and kernels route their temporaries through a
  per-run arena, so steady-state inference allocates nothing;
* a **step scheduler** — row-independent steps are split into batch
  chunks (which for Winograd steps are exactly blocks of input tiles)
  and fanned out across a shared worker pool, each lane writing its
  chunk straight into the planned output buffer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import memplan
from repro.engine.pool import resolve_threads, run_tasks
from repro.obs import trace as obs_trace

#: Ops that are row-independent along the batch axis (every input and the
#: output carry the batch on axis 0), so the executor may split a step
#: into sub-batches without changing per-sample results.
_CHUNKABLE_OPS = frozenset(
    {
        "add",
        "affine",
        "avg_pool",
        "concat",
        "conv2d",
        "flatten",
        "global_avg_pool",
        "linear",
        "max_pool",
        "relu",
        "winograd_conv2d",
    }
)

#: Working-set budget per step execution (~the L2 slice of one core).
#: A step whose inputs for the whole batch exceed this is executed in
#: batch chunks: large early-layer activations stay cache-resident while
#: small deep-layer steps keep the full batch (their GEMMs amortise
#: per-call overhead with batch).  Override via CompiledPlan.chunk_bytes
#: (0 disables chunking).
DEFAULT_CHUNK_BYTES = 1 << 19

#: Steps whose whole-batch inputs are smaller than this are not worth
#: fanning out across threads: the per-task dispatch would cost more
#: than the kernel.  (Chunking for cache residency has its own, larger
#: threshold above.)
MIN_PARALLEL_BYTES = 1 << 14

#: Ops whose *per-sample results cannot depend on the batch split at the
#: bit level*: elementwise, windowed, and shape ops whose reductions stay
#: entirely within one sample.  On the ``reference`` backend (the
#: bit-exactness oracle) the thread scheduler may shrink chunks only for
#: these — the big fused GEMMs (conv2d/winograd/linear) keep whatever
#: decomposition the thread-count-independent cache policy chose, because
#: BLAS may round a different M differently at the last ulp.  The
#: ``fast``/``turbo`` backends carry a float-tolerance contract (and the
#: ``int8`` integer GEMMs are exact at any blocking), so there every
#: chunkable op may be thread-split.
_SPLIT_SAFE_OPS = frozenset(
    {
        "add",
        "affine",
        "avg_pool",
        "concat",
        "flatten",
        "global_avg_pool",
        "max_pool",
        "relu",
    }
)

#: On the ``reference`` backend the cache policy may batch-chunk only the
#: split-safe ops above.  Every GEMM-bearing step depends on the batch
#: extent at the bit level — ``conv2d``/``linear`` lower to one GEMM
#: whose M dimension is ``n·oh·ow``/``n``, and the Winograd Hadamard
#: stage contracts against a ``P = n·th·tw`` column dimension — and BLAS
#: may round a different M/N blocking differently at the last ulp
#: (caught by the differential fuzz corpus on random models: seeds with
#: im2row stems and F(6, r) layers at small spatial sizes flip single
#: ulps under splitting).  The oracle backend therefore executes GEMM
#: steps unsplit, so "chunked ≡ serial bitwise" holds by construction,
#: not empirically.


@dataclass
class Step:
    """One kernel invocation in a compiled plan."""

    op: str
    inputs: Tuple[int, ...]
    output: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    fn: Optional[Callable] = None  # resolved kernel, bound at compile time
    frees: Tuple[int, ...] = ()  # registers whose last use is this step
    #: Execution domain: "float", or "int8" when the step carries native
    #: integer-arithmetic buffers (quantized weights as integer codes,
    #: requant multipliers) prepared by repro.engine.int8.
    domain: str = "float"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" [{self.label}]" if self.label else ""
        return f"Step({self.op}{label}: r{self.inputs} -> r{self.output})"


class CompiledPlan:
    """A flat, autograd-free inference program.

    Built by :func:`repro.engine.compile.compile_model`; run with
    :meth:`run` (single NCHW batch) or :meth:`run_many` (list of equal
    shape inputs, stacked into one batch so per-plan overheads and the
    Winograd input-tile transforms are shared across the whole batch).

    ``threads`` (per-call argument > this attribute > ``REPRO_THREADS``
    > 1) controls the step scheduler; ``planning`` (default on) controls
    the arena executor.  Both default to the exact serial semantics.
    """

    def __init__(
        self,
        steps: List[Step],
        num_regs: int,
        input_reg: int,
        output_reg: int,
        backend: str,
        signature: str,
        source: str = "",
    ):
        self.steps = steps
        self.num_regs = num_regs
        self.input_reg = input_reg
        self.output_reg = output_reg
        self.backend = backend
        self.signature = signature
        self.source = source  # class name of the compiled module
        self.chunk_bytes = DEFAULT_CHUNK_BYTES
        self.threads: Optional[int] = None  # None -> REPRO_THREADS default
        # The reference backend is the fidelity oracle: it keeps the
        # original allocate-per-step execution (its kernels ignore the
        # arena anyway, so planning would only burn memory).
        self.planning = backend != "reference"
        self._mem_lock = threading.Lock()
        self._mem_pools: Dict[tuple, Optional[memplan.ArenaPool]] = {}
        self._finalize()

    # -- liveness ----------------------------------------------------------
    def _finalize(self) -> None:
        """Compute per-step register death so the executor frees memory."""
        last_use: Dict[int, int] = {self.input_reg: -1}
        for i, step in enumerate(self.steps):
            for reg in step.inputs:
                last_use[reg] = i
        # The plan output must survive the whole run.
        last_use[self.output_reg] = len(self.steps)
        for i, step in enumerate(self.steps):
            step.frees = tuple(
                reg for reg in set(step.inputs) if last_use.get(reg) == i
            )

    # -- memory planning ---------------------------------------------------
    def _memory(self, sample_shape: tuple) -> Optional[memplan.ArenaPool]:
        """The arena pool for one per-sample input shape (lazily planned)."""
        if not self.planning:
            return None
        key = tuple(sample_shape)
        with self._mem_lock:
            pool = self._mem_pools.get(key, False)
            if pool is False:
                layout = memplan.plan_layout(
                    self.steps, self.input_reg, self.output_reg, key
                )
                pool = memplan.ArenaPool(layout) if layout is not None else None
                self._mem_pools[key] = pool
            return pool

    def prepare(self, input_shape: Sequence[int]) -> "CompiledPlan":
        """Build the memory plan for ``input_shape`` ahead of traffic
        (called by :func:`repro.engine.cache.get_cached_plan`, which knows
        the input shape at compile time)."""
        if len(input_shape) >= 2:
            self._memory(tuple(input_shape[1:]))
        return self

    # -- execution ------------------------------------------------------------
    @staticmethod
    def _has_cold_observer(step: Step) -> bool:
        """True if a fake-quant stage of ``step`` has not frozen its range
        yet.  Such a stage takes its scale from the first array it sees,
        so the step must see the *whole* batch, not a chunk — otherwise
        the frozen scale (and every later result) would depend on
        ``chunk_bytes``, breaking the reference backend's exactness."""
        return any(
            isinstance(v, dict) and "dynamic_bits" in v and "scale" not in v
            for v in step.attrs.values()
        )

    @staticmethod
    def _materialize(part: np.ndarray, arena) -> np.ndarray:
        """A chunk result that must outlive its lane's scratch buffers."""
        if arena is not None and arena.owns(part):
            return part.copy()
        return part

    def _run_split(
        self,
        step: Step,
        args: Tuple[np.ndarray, ...],
        n: int,
        chunk: int,
        threads: int,
        arena,
        step_index: int,
        out_view: Optional[np.ndarray],
        tracer: Optional["obs_trace.TraceBuffer"] = None,
        parent_id: Optional[str] = None,
    ) -> np.ndarray:
        """Execute one row-independent step in batch chunks of ``chunk``,
        fanned out over up to ``threads`` worker lanes.

        Every chunkable kernel computes each batch row independently
        (GEMM rows, elementwise ops), so chunking preserves per-sample
        results — bit-exactly for the reference kernels, and to float
        tolerance for the fast backend's fused GEMMs (BLAS may block a
        different M differently at the last ulp).  The same property
        makes serving-time dynamic micro-batching — and the thread
        scheduler riding the same split — transparent.  For Winograd
        steps a batch chunk is exactly a block of input tiles, so the
        lanes partition the tile GEMMs.
        """
        bounds = [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]
        lanes = min(threads, len(bounds)) if threads > 1 else 1
        parts: List[Optional[np.ndarray]] = [None] * len(bounds)
        span_name = step.label or step.op

        def work(lane: int) -> None:
            for index in range(lane, len(bounds), lanes):
                lo, hi = bounds[index]
                sub = tuple(a[lo:hi] for a in args)
                out = out_view[lo:hi] if out_view is not None else None
                t0 = obs_trace.now_ns() if tracer is not None else 0
                prev = memplan.bind_step(arena, step_index, lane, out)
                try:
                    part = step.fn(sub, step.attrs)
                finally:
                    memplan.unbind_step(prev)
                if tracer is not None:
                    tracer.record(
                        f"{span_name}[{lo}:{hi}]",
                        "kernel",
                        t0,
                        attrs={
                            "step": step_index,
                            "op": step.op,
                            "chunk_index": index,
                            "rows": [lo, hi],
                        },
                        parent_id=parent_id,
                        lane=lane,
                    )
                if out is not None and part is not out:
                    if out.shape == part.shape:
                        out[...] = part
                    else:  # planned shape diverged: fall back to collect
                        parts[index] = self._materialize(part, arena)
                elif out is None:
                    parts[index] = self._materialize(part, arena)

        run_tasks([(lambda lane=lane: work(lane)) for lane in range(lanes)], lanes)
        if out_view is not None:
            if all(p is None for p in parts):
                return out_view
            # Mixed: some chunks diverged from the planned shape (their
            # results are in `parts`), the rest landed in out_view — the
            # planned buffer cannot hold the true result, so assemble a
            # fresh one from both sources.
            merged = [
                part if part is not None else out_view[lo:hi]
                for (lo, hi), part in zip(bounds, parts)
            ]
            return np.concatenate(merged, axis=0)
        return np.concatenate(parts, axis=0)

    def run(
        self,
        x: np.ndarray,
        threads: Optional[int] = None,
        trace: Optional["obs_trace.TraceBuffer"] = None,
    ) -> np.ndarray:
        """Execute the plan on one input batch (NCHW ``np.ndarray``).

        ``threads`` overrides the plan/`REPRO_THREADS` default for this
        call; 0 means "all cores".  ``trace`` records one span per step
        into the given :class:`repro.obs.TraceBuffer` (``None`` falls
        back to the ambient ``REPRO_TRACE`` tracer; tracing never changes
        results — the instrumented path executes the identical step
        schedule).  With tracing disabled this is a single ``is None``
        branch in front of the untouched hot loop.
        """
        tracer = trace if trace is not None else obs_trace.active_tracer()
        if tracer is not None:
            return self._run_traced(x, threads, tracer)
        return self._run_untraced(x, threads)

    def _run_untraced(
        self, x: np.ndarray, threads: Optional[int] = None
    ) -> np.ndarray:
        """The pristine executor loop (no instrumentation on this path;
        ``repro bench engine`` measures it against :meth:`run` to pin the
        tracing-disabled overhead ≤ 1%)."""
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        n = x.shape[0]
        nthreads = resolve_threads(self.threads if threads is None else threads)
        chunk_bytes = self.chunk_bytes
        pool = self._memory(x.shape[1:])
        arena = pool.checkout() if pool is not None else None
        try:
            if arena is not None:
                arena.begin_run(n)
            regs: List[Optional[np.ndarray]] = [None] * self.num_regs
            regs[self.input_reg] = x
            for step_index, step in enumerate(self.steps):
                args = tuple(regs[i] for i in step.inputs)
                chunk = n
                if (
                    n > 1
                    and step.op in _CHUNKABLE_OPS
                    and all(a.shape[0] == n for a in args)
                    and not self._has_cold_observer(step)
                    and "resident_out" not in step.attrs
                    and "resident_src" not in step.attrs
                ):
                    in_bytes = sum(a.nbytes for a in args)
                    if (
                        chunk_bytes
                        and in_bytes > chunk_bytes
                        and (
                            self.backend != "reference"
                            or step.op in _SPLIT_SAFE_OPS
                        )
                    ):
                        # Largest sub-batch whose working set fits the budget.
                        chunk = max(1, n * chunk_bytes // in_bytes)
                    if (
                        nthreads > 1
                        and in_bytes >= MIN_PARALLEL_BYTES
                        and (
                            self.backend != "reference"
                            or step.op in _SPLIT_SAFE_OPS
                        )
                    ):
                        chunk = min(chunk, -(-n // nthreads))
                out_view = arena.reg_view(step.output) if arena is not None else None
                if chunk < n:
                    regs[step.output] = self._run_split(
                        step, args, n, chunk, nthreads, arena, step_index, out_view
                    )
                else:
                    prev = memplan.bind_step(arena, step_index, 0, out_view)
                    try:
                        regs[step.output] = step.fn(args, step.attrs)
                    finally:
                        memplan.unbind_step(prev)
                for reg in step.frees:
                    if reg != step.output:
                        regs[reg] = None
            out = regs[self.output_reg]
            assert out is not None, "plan produced no output"
            if arena is not None and arena.owns(out):
                # The caller keeps the result; arena buffers go back to
                # the pool and will be overwritten by the next run.
                out = out.copy()
            return out
        finally:
            if arena is not None:
                pool.checkin(arena)

    def _run_traced(
        self,
        x: np.ndarray,
        threads: Optional[int],
        tracer: "obs_trace.TraceBuffer",
    ) -> np.ndarray:
        """The instrumented twin of :meth:`_run_untraced`: the same step
        schedule (chunk sizes, lane counts, arena bindings) with one
        ``kernel`` span per step, per-chunk child spans under the thread
        scheduler, and a ``plan_run`` root span.  Kept as a separate loop
        so the untraced path carries zero per-step branches."""
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        n = x.shape[0]
        nthreads = resolve_threads(self.threads if threads is None else threads)
        chunk_bytes = self.chunk_bytes
        pool = self._memory(x.shape[1:])
        arena = pool.checkout() if pool is not None else None
        root_id = obs_trace.new_span_id()
        t_run = obs_trace.now_ns()
        try:
            if arena is not None:
                arena.begin_run(n)
            regs: List[Optional[np.ndarray]] = [None] * self.num_regs
            regs[self.input_reg] = x
            for step_index, step in enumerate(self.steps):
                args = tuple(regs[i] for i in step.inputs)
                chunk = n
                if (
                    n > 1
                    and step.op in _CHUNKABLE_OPS
                    and all(a.shape[0] == n for a in args)
                    and not self._has_cold_observer(step)
                    and "resident_out" not in step.attrs
                    and "resident_src" not in step.attrs
                ):
                    in_bytes = sum(a.nbytes for a in args)
                    if (
                        chunk_bytes
                        and in_bytes > chunk_bytes
                        and (
                            self.backend != "reference"
                            or step.op in _SPLIT_SAFE_OPS
                        )
                    ):
                        chunk = max(1, n * chunk_bytes // in_bytes)
                    if (
                        nthreads > 1
                        and in_bytes >= MIN_PARALLEL_BYTES
                        and (
                            self.backend != "reference"
                            or step.op in _SPLIT_SAFE_OPS
                        )
                    ):
                        chunk = min(chunk, -(-n // nthreads))
                out_view = arena.reg_view(step.output) if arena is not None else None
                step_span_id = obs_trace.new_span_id()
                t_step = obs_trace.now_ns()
                if chunk < n:
                    regs[step.output] = self._run_split(
                        step,
                        args,
                        n,
                        chunk,
                        nthreads,
                        arena,
                        step_index,
                        out_view,
                        tracer=tracer,
                        parent_id=step_span_id,
                    )
                else:
                    prev = memplan.bind_step(arena, step_index, 0, out_view)
                    try:
                        regs[step.output] = step.fn(args, step.attrs)
                    finally:
                        memplan.unbind_step(prev)
                result = regs[step.output]
                n_chunks = -(-n // chunk) if chunk < n else 1
                if step.domain == "int8":
                    domain = (
                        "int8-wino" if step.op == "winograd_conv2d" else "int8"
                    )
                else:
                    domain = (
                        "winograd" if step.op == "winograd_conv2d" else "fp32"
                    )
                tracer.record(
                    step.label or step.op,
                    "kernel",
                    t_step,
                    attrs={
                        "step": step_index,
                        "op": step.op,
                        "backend": self.backend,
                        "domain": domain,
                        "batch": n,
                        "chunk": chunk,
                        "chunks": n_chunks,
                        "lanes": (
                            min(nthreads, n_chunks) if nthreads > 1 else 1
                        ),
                        "out_bytes": int(result.nbytes),
                        "slot_bytes": (
                            int(out_view.nbytes) if out_view is not None else None
                        ),
                    },
                    span_id=step_span_id,
                    parent_id=root_id,
                )
                for reg in step.frees:
                    if reg != step.output:
                        regs[reg] = None
            out = regs[self.output_reg]
            assert out is not None, "plan produced no output"
            if arena is not None and arena.owns(out):
                out = out.copy()
            return out
        finally:
            tracer.record(
                "plan_run",
                "engine",
                t_run,
                attrs={
                    "backend": self.backend,
                    "source": self.source,
                    "batch": n,
                    "steps": len(self.steps),
                    "threads": nthreads,
                },
                span_id=root_id,
            )
            if arena is not None:
                pool.checkin(arena)

    def run_many(
        self,
        inputs: Sequence[np.ndarray],
        threads: Optional[int] = None,
        stack: bool = True,
    ) -> List[np.ndarray]:
        """Run several same-shape inputs, as one fused batch or concurrently.

        ``stack=True`` (default) stacks along the batch axis and executes
        once, so the filter transforms, plan dispatch, and tile
        transforms are amortised over the whole group — the step
        scheduler then fans the fused batch out across cores.
        ``stack=False`` instead executes each input as its own ``run``
        on the worker pool (each with its own arena checkout): the shape
        concurrent server traffic takes.
        """
        if not inputs:
            return []
        arrays = [np.asarray(a, dtype=np.float32) for a in inputs]
        if any(a.shape != arrays[0].shape for a in arrays):
            raise ValueError("run_many requires equal input shapes")
        if not stack:
            nthreads = resolve_threads(self.threads if threads is None else threads)
            results: List[Optional[np.ndarray]] = [None] * len(arrays)

            def one(index: int) -> None:
                results[index] = self.run(arrays[index], threads=1)

            run_tasks(
                [(lambda i=i: one(i)) for i in range(len(arrays))],
                min(nthreads, len(arrays)),
            )
            return list(results)  # type: ignore[return-value]
        sizes = [a.shape[0] for a in arrays]
        out = self.run(np.concatenate(arrays, axis=0), threads=threads)
        splits = np.cumsum(sizes)[:-1]
        return [np.ascontiguousarray(part) for part in np.split(out, splits, axis=0)]

    def __call__(self, x) -> np.ndarray:
        data = x.data if hasattr(x, "data") else x
        return self.run(data)

    # -- introspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    def ops_used(self) -> Tuple[str, ...]:
        return tuple(sorted({s.op for s in self.steps}))

    def int8_report(self) -> Dict[str, int]:
        """Counts of native-int8 steps and integer-code handoffs (the
        compile-time fusion the ``int8`` backend performed)."""
        native = [s for s in self.steps if s.domain == "int8"]
        return {
            "native_int8_steps": len(native),
            "int_handoffs": sum(
                1 for s in native if s.attrs.get("i8", {}).get("emit_q") is not None
            ),
            "absorbed_affines": sum(
                1 for s in native if s.attrs.get("i8", {}).get("post") is not None
            ),
        }

    def residency_report(self) -> List[Dict[str, Any]]:
        """Transform-domain residency edges wired by the compile pass.

        One entry per producer→consumer pair that exchanges a ``(t,t)``
        tap tensor instead of a spatial register round trip."""
        edges = []
        by_ro = {}
        for i, step in enumerate(self.steps):
            ro = step.attrs.get("resident_out")
            if ro is not None:
                by_ro[id(ro)] = (i, step)
        for j, step in enumerate(self.steps):
            rin = step.attrs.get("resident_src")
            if rin is None or id(rin) not in by_ro:
                continue
            i, producer = by_ro[id(rin)]
            edges.append(
                {
                    "producer": i,
                    "consumer": j,
                    "producer_label": producer.label,
                    "consumer_label": step.label,
                    "tile": f"F({rin['m']},{rin['r']})",
                    "per_tap": bool(rin.get("per_tap")),
                }
            )
        return edges

    def memory_report(self, batch: Optional[int] = None) -> Dict[str, Any]:
        """The memory planner's static layout plus runtime arena counters.

        Static (per planned input shape): registers, arena slots,
        ``buffers_reused`` (registers sharing a slot thanks to disjoint
        liveness) and peak arena bytes.  Runtime (aggregated over the
        plan's arena pools): arenas built, resident bytes, and
        ``steady_state_allocations`` — arena buffer allocations during
        the *most recent* run, which drops to zero once warm (the
        zero-allocation contract) — next to ``allocations_eliminated``,
        the number of buffer requests that hit an existing workspace.
        """
        with self._mem_lock:
            pools = dict(self._mem_pools)
        report: Dict[str, Any] = {
            "planning": self.planning,
            "registers": self.num_regs,
            "planned_shapes": [],
            "arenas_built": 0,
            "arena_bytes": 0,
            "scratch_bytes": 0,
            "steady_state_allocations": 0,
            "allocations_eliminated": 0,
            "shape_misses": 0,
        }
        for key, pool in sorted(pools.items(), key=lambda kv: str(kv[0])):
            entry: Dict[str, Any] = {"sample_shape": list(key)}
            if pool is None:
                entry["planned"] = False
                report["planned_shapes"].append(entry)
                continue
            entry["planned"] = True
            entry.update(pool.layout.summary())
            if batch is not None:
                entry["arena_bytes_at_batch"] = (
                    pool.layout.bytes_per_sample * int(batch)
                )
            stats = pool.stats()
            entry["arenas_built"] = stats["arenas_built"]
            report["planned_shapes"].append(entry)
            report["arenas_built"] += stats["arenas_built"]
            report["arena_bytes"] += stats["arena_bytes"]
            report["scratch_bytes"] += stats["scratch_bytes"]
            report["steady_state_allocations"] += stats["last_run_allocs"]
            report["allocations_eliminated"] += stats["last_run_reuse_hits"]
            report["shape_misses"] += stats["shape_misses"]
        return report

    def describe(self) -> List[str]:
        """Human-readable step listing (used by ``repro infer --describe``)."""
        lines = [f"CompiledPlan({self.source}, backend={self.backend}, {len(self.steps)} steps)"]
        for i, step in enumerate(self.steps):
            tag = " +relu" if step.attrs.get("fuse_relu") else ""
            if step.domain != "float":
                tag += f" <{step.domain}>"
            label = f" [{step.label}]" if step.label else ""
            ins = ",".join(f"r{r}" for r in step.inputs)
            lines.append(f"  {i:3d}: {step.op}{tag}{label} ({ins}) -> r{step.output}")
        for edge in self.residency_report():
            tap = " per-tap int8" if edge["per_tap"] else ""
            lines.append(
                f"  residency: step {edge['producer']} -> {edge['consumer']} "
                f"stays in the {edge['tile']} transform domain{tap}"
            )
        with self._mem_lock:
            pools = [p for p in self._mem_pools.values() if p is not None]
        for pool in pools:
            s = pool.layout.summary()
            lines.append(
                f"  memory: {s['planned_registers']} registers in {s['slots']} "
                f"slots ({s['buffers_reused']} reused), "
                f"{s['arena_bytes_per_sample']} arena bytes/sample"
            )
        return lines

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledPlan(source={self.source!r}, backend={self.backend!r}, "
            f"steps={len(self.steps)})"
        )
