"""The execution plan IR and its batched executor.

A compiled plan is a flat list of :class:`Step`s over a register file:
each step reads input registers, calls its kernel, and writes one output
register.  No autograd graph is built; every array is a plain
``np.ndarray`` and parameters were frozen (and pre-transformed) at
compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Ops that are row-independent along the batch axis (every input and the
#: output carry the batch on axis 0), so the executor may split a step
#: into sub-batches without changing per-sample results.
_CHUNKABLE_OPS = frozenset(
    {
        "add",
        "affine",
        "avg_pool",
        "concat",
        "conv2d",
        "flatten",
        "global_avg_pool",
        "linear",
        "max_pool",
        "relu",
        "winograd_conv2d",
    }
)

#: Working-set budget per step execution (~the L2 slice of one core).
#: A step whose inputs for the whole batch exceed this is executed in
#: batch chunks: large early-layer activations stay cache-resident while
#: small deep-layer steps keep the full batch (their GEMMs amortise
#: per-call overhead with batch).  Override via CompiledPlan.chunk_bytes
#: (0 disables chunking).
DEFAULT_CHUNK_BYTES = 1 << 19


@dataclass
class Step:
    """One kernel invocation in a compiled plan."""

    op: str
    inputs: Tuple[int, ...]
    output: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    fn: Optional[Callable] = None  # resolved kernel, bound at compile time
    frees: Tuple[int, ...] = ()  # registers whose last use is this step
    #: Execution domain: "float", or "int8" when the step carries native
    #: integer-arithmetic buffers (quantized weights as integer codes,
    #: requant multipliers) prepared by repro.engine.int8.
    domain: str = "float"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" [{self.label}]" if self.label else ""
        return f"Step({self.op}{label}: r{self.inputs} -> r{self.output})"


class CompiledPlan:
    """A flat, autograd-free inference program.

    Built by :func:`repro.engine.compile.compile_model`; run with
    :meth:`run` (single NCHW batch) or :meth:`run_many` (list of equal
    shape inputs, stacked into one batch so per-plan overheads and the
    Winograd input-tile transforms are shared across the whole batch).
    """

    def __init__(
        self,
        steps: List[Step],
        num_regs: int,
        input_reg: int,
        output_reg: int,
        backend: str,
        signature: str,
        source: str = "",
    ):
        self.steps = steps
        self.num_regs = num_regs
        self.input_reg = input_reg
        self.output_reg = output_reg
        self.backend = backend
        self.signature = signature
        self.source = source  # class name of the compiled module
        self.chunk_bytes = DEFAULT_CHUNK_BYTES
        self._finalize()

    # -- liveness ----------------------------------------------------------
    def _finalize(self) -> None:
        """Compute per-step register death so the executor frees memory."""
        last_use: Dict[int, int] = {self.input_reg: -1}
        for i, step in enumerate(self.steps):
            for reg in step.inputs:
                last_use[reg] = i
        # The plan output must survive the whole run.
        last_use[self.output_reg] = len(self.steps)
        for i, step in enumerate(self.steps):
            step.frees = tuple(
                reg for reg in set(step.inputs) if last_use.get(reg) == i
            )

    # -- execution ------------------------------------------------------------
    @staticmethod
    def _run_chunked(step: Step, args: Tuple[np.ndarray, ...], n: int, chunk: int):
        """Execute one row-independent step in batch chunks of ``chunk``.

        Every chunkable kernel computes each batch row independently
        (GEMM rows, elementwise ops), so chunking preserves per-sample
        results — bit-exactly for the reference kernels, and to float
        tolerance for the fast backend's fused GEMMs (BLAS may block a
        different M differently at the last ulp).  The same property
        makes serving-time dynamic micro-batching transparent.
        """
        parts = [
            step.fn(tuple(a[i : i + chunk] for a in args), step.attrs)
            for i in range(0, n, chunk)
        ]
        return np.concatenate(parts, axis=0)

    @staticmethod
    def _has_cold_observer(step: Step) -> bool:
        """True if a fake-quant stage of ``step`` has not frozen its range
        yet.  Such a stage takes its scale from the first array it sees,
        so the step must see the *whole* batch, not a chunk — otherwise
        the frozen scale (and every later result) would depend on
        ``chunk_bytes``, breaking the reference backend's exactness."""
        return any(
            isinstance(v, dict) and "dynamic_bits" in v and "scale" not in v
            for v in step.attrs.values()
        )

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the plan on one input batch (NCHW ``np.ndarray``)."""
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        n = x.shape[0]
        chunk_bytes = self.chunk_bytes
        regs: List[Optional[np.ndarray]] = [None] * self.num_regs
        regs[self.input_reg] = x
        for step in self.steps:
            args = tuple(regs[i] for i in step.inputs)
            chunk = n
            if n > 1 and chunk_bytes and step.op in _CHUNKABLE_OPS:
                in_bytes = sum(a.nbytes for a in args)
                if (
                    in_bytes > chunk_bytes
                    and all(a.shape[0] == n for a in args)
                    and not self._has_cold_observer(step)
                ):
                    # Largest sub-batch whose working set fits the budget.
                    chunk = max(1, n * chunk_bytes // in_bytes)
            if chunk < n:
                regs[step.output] = self._run_chunked(step, args, n, chunk)
            else:
                regs[step.output] = step.fn(args, step.attrs)
            for reg in step.frees:
                if reg != step.output:
                    regs[reg] = None
        out = regs[self.output_reg]
        assert out is not None, "plan produced no output"
        return out

    def run_many(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Run several same-shape inputs as one fused batch.

        Stacks along the batch axis, executes once (so the filter
        transforms, plan dispatch, and tile transforms are amortised over
        the whole group) and splits the result back per input.
        """
        if not inputs:
            return []
        arrays = [np.asarray(a, dtype=np.float32) for a in inputs]
        if any(a.shape != arrays[0].shape for a in arrays):
            raise ValueError("run_many requires equal input shapes")
        sizes = [a.shape[0] for a in arrays]
        out = self.run(np.concatenate(arrays, axis=0))
        splits = np.cumsum(sizes)[:-1]
        return [np.ascontiguousarray(part) for part in np.split(out, splits, axis=0)]

    def __call__(self, x) -> np.ndarray:
        data = x.data if hasattr(x, "data") else x
        return self.run(data)

    # -- introspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    def ops_used(self) -> Tuple[str, ...]:
        return tuple(sorted({s.op for s in self.steps}))

    def int8_report(self) -> Dict[str, int]:
        """Counts of native-int8 steps and integer-code handoffs (the
        compile-time fusion the ``int8`` backend performed)."""
        native = [s for s in self.steps if s.domain == "int8"]
        return {
            "native_int8_steps": len(native),
            "int_handoffs": sum(
                1 for s in native if s.attrs.get("i8", {}).get("emit_q") is not None
            ),
            "absorbed_affines": sum(
                1 for s in native if s.attrs.get("i8", {}).get("post") is not None
            ),
        }

    def describe(self) -> List[str]:
        """Human-readable step listing (used by ``repro infer --describe``)."""
        lines = [f"CompiledPlan({self.source}, backend={self.backend}, {len(self.steps)} steps)"]
        for i, step in enumerate(self.steps):
            tag = " +relu" if step.attrs.get("fuse_relu") else ""
            if step.domain != "float":
                tag += f" <{step.domain}>"
            label = f" [{step.label}]" if step.label else ""
            ins = ",".join(f"r{r}" for r in step.inputs)
            lines.append(f"  {i:3d}: {step.op}{tag}{label} ({ins}) -> r{step.output}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledPlan(source={self.source!r}, backend={self.backend!r}, "
            f"steps={len(self.steps)})"
        )
