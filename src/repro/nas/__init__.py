"""wiNAS — Winograd-aware neural architecture search (paper §4).

A ProxylessNAS-style gradient search that, for each 3×3 convolution of a
fixed macro-architecture, picks among {im2row, F2, F4, F6} (``WA`` space)
or the product of those with {FP32, INT16, INT8} (``WA-Q`` space),
alternating:

* **weight steps** (Eq. 2): cross-entropy + L2, SGD with Nesterov momentum,
  single sampled path per batch;
* **architecture steps** (Eq. 3): cross-entropy + L2 on the architecture
  parameters + λ₂·E{latency}, Adam with β₁ = 0 (only sampled paths move),
  two sampled paths per batch (path-level binarization).

``E{latency}`` is the probability-weighted sum of per-candidate latencies
taken from the calibrated hardware model's lookup table.
"""

from repro.nas.search_space import Candidate, WA_SPACE, waq_space, wa_space
from repro.nas.mixed_op import MixedConv2d
from repro.nas.winas import WiNAS, SearchConfig, SearchResult

__all__ = [
    "Candidate",
    "WA_SPACE",
    "wa_space",
    "waq_space",
    "MixedConv2d",
    "WiNAS",
    "SearchConfig",
    "SearchResult",
]
