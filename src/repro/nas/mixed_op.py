"""The over-parameterised layer holding all candidate operations.

Differences from ProxylessNAS, both deliberate:

* **Shared filters.** Every candidate computes the *same* convolution, just
  with a different algorithm/precision, so all candidates share one weight
  (and bias) tensor.  This keeps the paper's premise — wiNAS preserves the
  macro-architecture and model size — and means the weight-update step
  trains the one real filter regardless of which path was sampled.
* **Two-path arch step.** The architecture update evaluates two sampled
  candidates and differentiates through their pairwise softmax gates,
  ProxylessNAS's path-level binarization specialised to a pair.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor
from repro.nn import init
from repro.nn.module import Module, ModuleList, Parameter
from repro.nas.search_space import Candidate


class MixedConv2d(Module):
    """A conv layer superposing all candidate implementations.

    Modes:

    * ``mode == "weight"`` — sample one path from softmax(α), forward it
      (gradients reach only the shared filters / that path's transforms);
    * ``mode == "arch"`` — sample two paths, forward both, combine with
      differentiable gates so the loss reaches α;
    * eval — the argmax path.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        candidates: Sequence[Candidate],
        kernel_size: int = 3,
        groups: int = 1,
        rng=None,
        seed: int = 0,
    ):
        super().__init__()
        if not candidates:
            raise ValueError("need at least one candidate")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.groups = groups
        self.candidates = list(candidates)

        shared_weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels // groups, kernel_size, kernel_size), rng=rng
            )
        )
        shared_bias = Parameter(
            init.uniform_bias(
                (out_channels,), (in_channels // groups) * kernel_size**2, rng=rng
            )
        )
        self.weight = shared_weight
        self.bias = shared_bias

        paths = []
        for cand in self.candidates:
            module = cand.to_spec().build(
                in_channels, out_channels, kernel_size=kernel_size, groups=groups, rng=rng
            )
            self._share_parameters(module, shared_weight, shared_bias)
            paths.append(module)
        self.paths = ModuleList(paths)

        self.alpha = Parameter(np.zeros(len(self.candidates), dtype=np.float32))
        self.mode = "weight"
        self.latencies_ms: Optional[np.ndarray] = None
        self._rng = np.random.default_rng(seed)
        self._last_sampled: List[int] = []

    @staticmethod
    def _share_parameters(module: Module, weight: Parameter, bias: Parameter) -> None:
        """Point the candidate's filter parameters at the shared tensors."""
        target = module
        if hasattr(module, "conv"):  # QuantConv2d wrapper
            target = module.conv
        target.weight = weight
        target.bias = bias

    # -- probabilities ---------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        a = self.alpha.data.astype(np.float64)
        e = np.exp(a - a.max())
        return e / e.sum()

    def argmax_index(self) -> int:
        return int(np.argmax(self.alpha.data))

    def chosen(self) -> Candidate:
        return self.candidates[self.argmax_index()]

    # -- latency ------------------------------------------------------------
    def set_latencies(self, latencies_ms: Sequence[float]) -> None:
        lat = np.asarray(latencies_ms, dtype=np.float64)
        if lat.shape != (len(self.candidates),):
            raise ValueError(
                f"expected {len(self.candidates)} latencies, got shape {lat.shape}"
            )
        self.latencies_ms = lat

    def expected_latency(self) -> Tensor:
        """E{latency} = Σ softmax(α)ᵢ · latᵢ — differentiable w.r.t. α."""
        if self.latencies_ms is None:
            raise RuntimeError("latencies not set; call WiNAS.populate_latencies first")
        probs = ops.exp(ops.log_softmax(self.alpha, axis=0))
        return ops.sum(probs * as_tensor(self.latencies_ms.astype(np.float32)))

    # -- forward -----------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        self.last_input_hw = (x.shape[2], x.shape[3])
        if not self.training:
            return self.paths[self.argmax_index()](x)
        if self.mode == "weight":
            idx = int(self._rng.choice(len(self.candidates), p=self.probabilities()))
            self._last_sampled = [idx]
            return self.paths[idx](x)
        if self.mode == "arch":
            probs = self.probabilities()
            n = len(self.candidates)
            if n < 2:
                self._last_sampled = [0]
                return self.paths[0](x)
            i, j = self._rng.choice(n, size=2, replace=False, p=probs)
            self._last_sampled = [int(i), int(j)]
            # Differentiable pairwise gates over the two sampled alphas.
            mask = np.zeros((2, n), dtype=np.float32)
            mask[0, i] = 1.0
            mask[1, j] = 1.0
            pair_logits = ops.matmul(as_tensor(mask), self.alpha.reshape(n, 1))  # (2,1)
            gates = ops.exp(ops.log_softmax(pair_logits, axis=0))
            gi = ops.slice_axis(gates, 0, 0, 1).reshape(1, 1, 1, 1)
            gj = ops.slice_axis(gates, 0, 1, 2).reshape(1, 1, 1, 1)
            return self.paths[int(i)](x) * gi + self.paths[int(j)](x) * gj
        raise RuntimeError(f"unknown mode {self.mode!r}")

    def __repr__(self) -> str:
        probs = self.probabilities()
        best = self.candidates[int(np.argmax(probs))]
        return (
            f"MixedConv2d({self.in_channels}->{self.out_channels}, "
            f"{len(self.candidates)} candidates, leader={best.name} "
            f"p={probs.max():.2f})"
        )
