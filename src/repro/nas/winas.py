"""The wiNAS search driver (paper §4.1, §5.2).

Alternates the two-stage optimisation of ProxylessNAS:

* weight stage on the training split, loss Eq. 2:
  ``L = CE + λ₀‖w‖²`` — SGD with Nesterov momentum;
* architecture stage on the validation split, loss Eq. 3:
  ``L = CE + λ₁‖a‖² + λ₂·E{latency}`` — Adam with β₁ = 0.

After the search, :meth:`WiNAS.derive_plan` freezes each layer to its
argmax candidate, producing a :class:`~repro.models.common.LayerPlan` that
is trained end-to-end with the §5.1 recipe (the paper does the same).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.loader import DataLoader
from repro.hardware.model import ConvShape
from repro.hardware.table import LatencyTable
from repro.models.common import ConvSpec, LayerPlan
from repro.nn.losses import cross_entropy
from repro.nn.module import Module, Parameter
from repro.optim.adam import Adam
from repro.optim.sgd import SGD
from repro.training.metrics import Meter, accuracy
from repro.nas.mixed_op import MixedConv2d
from repro.nas.search_space import Candidate


@dataclass
class SearchConfig:
    """Hyper-parameters of the search (§5.2 defaults, scaled)."""

    epochs: int = 2
    weight_lr: float = 0.01
    weight_momentum: float = 0.9
    lambda0: float = 1e-4  # Eq. 2 weight decay
    arch_lr: float = 1e-2
    lambda1: float = 1e-3  # Eq. 3 decay on architecture params
    lambda2: float = 0.01  # Eq. 3 latency weight
    core: str = "A73"
    #: Where candidate latencies come from: "table" (calibrated Arm-CPU
    #: model), "measured" (wall-clock of compiled per-candidate plans on
    #: this host, via repro.engine) or "served" (per-request latency of
    #: each candidate under concurrent dynamic-batched load, via
    #: repro.serve — the regime a deployed model actually sees).
    latency_source: str = "table"
    #: Closed-loop clients used by the "served" source.
    served_concurrency: int = 8
    #: Engine backend the "measured"/"served" probes compile candidates
    #: with ("fast", "turbo" or "int8") — searching with "int8" optimises
    #: latency of the native integer execution path that quantized
    #: candidates would actually be deployed on.
    engine_backend: str = "fast"
    #: Engine threads the "measured"/"served" probes execute candidates
    #: with (``None`` → the ``REPRO_THREADS`` default): searching with
    #: the deployment thread count optimises the latency the parallel
    #: executor will actually deliver.
    engine_threads: Optional[int] = None
    #: Worker processes the "served" probe shards candidates across
    #: (mirrors ``repro serve --workers``; 0 = in-process): searching
    #: against the sharded deployment folds the shm/IPC round trip and
    #: true process parallelism into the optimised latency.
    serve_workers: int = 0
    verbose: bool = False


@dataclass
class SearchResult:
    plan: LayerPlan
    chosen: List[Candidate]
    expected_latency_ms: float
    history: List[Dict[str, float]] = field(default_factory=list)

    def describe(self) -> List[str]:
        return [f"layer {i:2d}: {c.name}" for i, c in enumerate(self.chosen)]


class WiNAS:
    """Search over a model whose searchable convs are :class:`MixedConv2d`.

    Build the model by passing a ``LayerPlan`` whose ``factory`` creates
    mixed ops (see :meth:`make_plan`), then call :meth:`search`.
    """

    def __init__(self, model: Module, config: Optional[SearchConfig] = None):
        self.model = model
        self.config = config or SearchConfig()
        self.mixed_ops: List[MixedConv2d] = [
            m for m in model.modules() if isinstance(m, MixedConv2d)
        ]
        if not self.mixed_ops:
            raise ValueError("model contains no MixedConv2d layers to search over")
        alpha_ids = {id(m.alpha) for m in self.mixed_ops}
        self.arch_params: List[Parameter] = [m.alpha for m in self.mixed_ops]
        self.weight_params: List[Parameter] = [
            p for p in model.parameters() if id(p) not in alpha_ids
        ]
        # Eq. 2 / Eq. 3 L2 terms live in the optimizers' weight_decay.
        self.weight_opt = SGD(
            self.weight_params,
            lr=self.config.weight_lr,
            momentum=self.config.weight_momentum,
            nesterov=True,
            weight_decay=self.config.lambda0,
        )
        self.arch_opt = Adam(
            self.arch_params,
            lr=self.config.arch_lr,
            betas=(0.0, 0.999),  # β₁ = 0: only sampled paths move (§5.2)
            weight_decay=self.config.lambda1,
        )
        self.latency_table = LatencyTable(core=self.config.core)

    # -- plan factory -------------------------------------------------------
    @staticmethod
    def make_plan(candidates: Sequence[Candidate], seed: int = 0, rng=None) -> LayerPlan:
        """A LayerPlan whose layers are mixed ops over ``candidates``."""

        def factory(cin: int, cout: int, index: int, groups: int) -> MixedConv2d:
            return MixedConv2d(
                cin, cout, candidates, groups=groups, rng=rng, seed=seed + index
            )

        return LayerPlan(ConvSpec("im2row"), factory=factory)

    # -- latency ---------------------------------------------------------------
    def populate_latencies(
        self, example_input: np.ndarray, source: Optional[str] = None
    ) -> None:
        """Fill each mixed op's candidate latencies.

        The shape probe runs through a compiled inference plan
        (:mod:`repro.engine`) rather than an eager autograd forward —
        the plan's ``record_hw`` steps leave the same ``last_input_hw``
        metadata behind, without building a graph.

        ``source`` (default :attr:`SearchConfig.latency_source`):

        * ``"table"`` — the calibrated Arm-CPU latency model (the
          paper's deployment target);
        * ``"measured"`` — wall-clock of a compiled single-layer plan
          per candidate on *this* host, so the search optimises what the
          engine will actually execute;
        * ``"served"`` — mean per-request latency of each candidate
          behind a dynamic micro-batcher under
          :attr:`SearchConfig.served_concurrency` concurrent clients
          (:func:`repro.serve.served_latency_ms`), so the search
          optimises latency under serving load, queueing included.
        """
        from repro.engine import compile_model

        source = source or self.config.latency_source
        if source not in ("table", "measured", "served"):
            raise ValueError(f"unknown latency source {source!r}")
        self.model.eval()
        probe = np.ascontiguousarray(np.asarray(example_input, dtype=np.float32))
        compile_model(self.model, backend="fast").run(probe)
        self.model.train()
        backend = self.config.engine_backend
        for op in self.mixed_ops:
            if not hasattr(op, "last_input_hw"):
                raise RuntimeError("mixed op did not see the probe input")
            h, w = op.last_input_hw
            if source == "measured":
                op.set_latencies(
                    self._measure_candidates(
                        op, h, w, backend, self.config.engine_threads
                    )
                )
                continue
            if source == "served":
                op.set_latencies(
                    self._measure_candidates_served(
                        op, h, w, self.config.served_concurrency, backend,
                        self.config.engine_threads,
                        self.config.serve_workers,
                    )
                )
                continue
            out_w = h + 2 * ((op.kernel_size - 1) // 2) - op.kernel_size + 1
            shape = ConvShape(
                op.in_channels, op.out_channels, out_w,
                kernel_size=op.kernel_size, groups=op.groups,
            )
            lat = [
                self.latency_table.latency_ms(
                    shape,
                    cand.algorithm,
                    dtype=cand.precision,
                    dense_transforms=cand.is_winograd and cand.flex,
                )
                for cand in op.candidates
            ]
            op.set_latencies(lat)

    @staticmethod
    def _measure_candidates(
        op: MixedConv2d,
        h: int,
        w: int,
        backend: str = "fast",
        threads: Optional[int] = None,
    ) -> List[float]:
        """Wall-clock each candidate as a compiled single-layer plan."""
        from repro.engine import compile_model, measure_plan_ms

        x = np.zeros((1, op.in_channels, h, w), dtype=np.float32)
        latencies = []
        for path in op.paths:
            plan = compile_model(path, backend=backend)
            latencies.append(
                measure_plan_ms(plan, x, repeats=3, warmup=1, threads=threads)
            )
        return latencies

    @staticmethod
    def _measure_candidates_served(
        op: MixedConv2d,
        h: int,
        w: int,
        concurrency: int,
        backend: str = "fast",
        threads: Optional[int] = None,
        workers: int = 0,
    ) -> List[float]:
        """Per-request latency of each candidate under batched serving load."""
        from repro.engine import compile_model
        from repro.serve.probe import served_latency_ms

        x = np.zeros((1, op.in_channels, h, w), dtype=np.float32)
        return [
            served_latency_ms(
                compile_model(path, backend=backend),
                x,
                concurrency=concurrency,
                threads=threads,
                workers=workers,
            )
            for path in op.paths
        ]

    def expected_latency_ms(self) -> float:
        """Current E{latency} over searchable layers (argmax-free, in ms)."""
        total = 0.0
        for op in self.mixed_ops:
            if op.latencies_ms is None:
                raise RuntimeError("latencies not populated")
            total += float(op.probabilities() @ op.latencies_ms)
        return total

    def _set_mode(self, mode: str) -> None:
        for op in self.mixed_ops:
            op.mode = mode

    # -- search ----------------------------------------------------------------
    def search(
        self,
        train_loader: DataLoader,
        val_loader: DataLoader,
        epochs: Optional[int] = None,
    ) -> SearchResult:
        epochs = epochs if epochs is not None else self.config.epochs
        history: List[Dict[str, float]] = []
        self.model.train()
        for epoch in range(epochs):
            weight_meter, arch_meter, acc_meter = Meter(), Meter(), Meter()
            val_iter = iter(val_loader)
            for images, labels in train_loader:
                # ---- weight step (Eq. 2) on the training split ----
                self._set_mode("weight")
                logits = self.model(Tensor(images))
                loss = cross_entropy(logits, labels)
                self.weight_opt.zero_grad()
                self.arch_opt.zero_grad()
                loss.backward()
                self.weight_opt.step()
                weight_meter.update(loss.item(), len(labels))
                acc_meter.update(accuracy(logits, labels), len(labels))

                # ---- architecture step (Eq. 3) on the validation split ----
                try:
                    v_images, v_labels = next(val_iter)
                except StopIteration:
                    val_iter = iter(val_loader)
                    v_images, v_labels = next(val_iter)
                self._set_mode("arch")
                v_logits = self.model(Tensor(v_images))
                arch_loss = cross_entropy(v_logits, v_labels)
                latency = None
                for op in self.mixed_ops:
                    term = op.expected_latency()
                    latency = term if latency is None else latency + term
                arch_loss = arch_loss + self.config.lambda2 * latency
                self.weight_opt.zero_grad()
                self.arch_opt.zero_grad()
                arch_loss.backward()
                self.arch_opt.step()
                arch_meter.update(arch_loss.item(), len(v_labels))
            entry = {
                "epoch": epoch,
                "weight_loss": weight_meter.mean,
                "arch_loss": arch_meter.mean,
                "train_accuracy": acc_meter.mean,
                "expected_latency_ms": self.expected_latency_ms(),
            }
            history.append(entry)
            if self.config.verbose:  # pragma: no cover
                print(
                    f"search epoch {epoch}: w-loss {entry['weight_loss']:.3f} "
                    f"a-loss {entry['arch_loss']:.3f} "
                    f"E[lat] {entry['expected_latency_ms']:.2f} ms"
                )
        return self.derive(history)

    # -- derivation ---------------------------------------------------------------
    def derive(self, history: Optional[List[Dict[str, float]]] = None) -> SearchResult:
        """Freeze each layer to its argmax candidate."""
        chosen = [op.chosen() for op in self.mixed_ops]
        overrides = {i: c.to_spec() for i, c in enumerate(chosen)}
        plan = LayerPlan(chosen[0].to_spec(), overrides)
        total_lat = 0.0
        for op in self.mixed_ops:
            if op.latencies_ms is not None:
                total_lat += float(op.latencies_ms[op.argmax_index()])
        return SearchResult(
            plan=plan,
            chosen=chosen,
            expected_latency_ms=total_lat,
            history=history or [],
        )
