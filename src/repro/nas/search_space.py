"""Candidate operation definitions for the two wiNAS search spaces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.models.common import ConvSpec
from repro.quant.qconfig import QConfig, fp32, int8, int16

#: Algorithms in the Fig. 3 search space.
SEARCH_ALGORITHMS: Tuple[str, ...] = ("im2row", "F2", "F4", "F6")

#: Precisions in the WA-Q space (§5.2).
SEARCH_PRECISIONS: Tuple[str, ...] = ("fp32", "int16", "int8")

_QCONFIGS = {"fp32": fp32, "int16": int16, "int8": int8}


@dataclass(frozen=True)
class Candidate:
    """One operation choice for a layer: algorithm × precision."""

    algorithm: str
    precision: str = "fp32"
    flex: bool = True  # Winograd candidates are Winograd-aware with flex

    def __post_init__(self) -> None:
        if self.algorithm not in SEARCH_ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.precision not in SEARCH_PRECISIONS:
            raise ValueError(f"unknown precision {self.precision!r}")

    @property
    def qconfig(self) -> QConfig:
        return _QCONFIGS[self.precision]()

    @property
    def is_winograd(self) -> bool:
        return self.algorithm.startswith("F")

    @property
    def name(self) -> str:
        return f"{self.algorithm}@{self.precision}"

    def to_spec(self) -> ConvSpec:
        return ConvSpec(
            self.algorithm, self.qconfig, flex=self.flex and self.is_winograd
        )


def wa_space(precision: str = "fp32", flex: bool = True) -> List[Candidate]:
    """wiNAS-WA: all algorithms at one fixed bit-width (§5.2)."""
    return [Candidate(a, precision, flex) for a in SEARCH_ALGORITHMS]


def waq_space(flex: bool = True) -> List[Candidate]:
    """wiNAS-WA-Q: algorithms × {FP32, INT16, INT8} (§5.2)."""
    return [
        Candidate(a, p, flex)
        for a in SEARCH_ALGORITHMS
        for p in SEARCH_PRECISIONS
    ]


#: Default WA space at FP32.
WA_SPACE: List[Candidate] = wa_space()
