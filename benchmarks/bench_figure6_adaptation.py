"""Figure 6 — adapting a pretrained standard model to Winograd-aware form.

Shape to match the paper: with the same (short) budget, models adapted
from a trained standard-conv source outperform from-scratch training, and
the effect requires/most benefits the flex transforms.
"""

from repro.experiments import figure6


def test_figure6_adaptation(run_once):
    report = run_once(figure6.run, scale="smoke", seed=0)

    def acc(config):
        return report.find(config=config)["accuracy"]

    assert acc("F4-flex (adapted)") >= acc("F4-flex (scratch)") - 0.02
    assert acc("F4 (adapted)") >= acc("F4 (scratch)") - 0.05
    # curves recorded for the figure
    assert all(isinstance(r["curve"], list) for r in report.rows)
