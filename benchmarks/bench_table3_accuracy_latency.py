"""Table 3 — ResNet-18 accuracy & latency per algorithm and precision.

Regenerates the full table: seven FP32 rows and four INT8 rows with
modelled A53/A73 latencies and speedups against FP32 im2row.

Shapes to match the paper:
* latency ordering FP32 A73: WF4 < WF2 < im2row < im2col;
* INT8 Winograd-aware nets are the fastest configurations overall;
* accuracy: FP32 rows all close; INT8 WAF4 trails INT8 WAF2 (the paper's
  92.46 vs 93.72 gap, amplified at micro scale).
"""

from repro.experiments import table3


def test_table3_accuracy_latency(run_once):
    report = run_once(table3.run, scale="smoke", seed=0)

    def row(conv, bits):
        return report.find(conv=conv, bits=bits)

    # -- latency shape -----------------------------------------------------
    assert row("WF4", 32)["a73_ms"] < row("WF2", 32)["a73_ms"] < row("im2row", 32)["a73_ms"]
    assert row("im2col", 32)["a73_ms"] > row("im2row", 32)["a73_ms"]
    assert row("WAF4", 8)["a73_ms"] < row("im2row", 8)["a73_ms"]
    assert row("WAF4", 8)["a73_speedup"] > 2.0  # paper: 2.43×
    assert row("WAF4", 8)["a53_speedup"] > 1.1  # paper: 1.44×

    # -- accuracy shape -------------------------------------------------------
    fp32_accs = [r["accuracy"] for r in report.rows if r["bits"] == 32]
    assert max(fp32_accs) - min(fp32_accs) < 0.25
    assert row("WAF2", 8)["accuracy"] > 0.4  # INT8 WA-F2 is solid
    assert row("WAF2", 8)["accuracy"] >= row("WAF4", 8)["accuracy"] - 0.05
