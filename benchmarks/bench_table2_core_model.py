"""Table 2 — core specifications and the calibrated model built on them.

Regenerates the spec table and validates that the calibrated per-core
models respect the published hierarchy (A73 strictly faster).
"""

from repro.experiments.common import ExperimentReport, format_table
from repro.hardware import CORES, ConvShape, get_calibrated_model
from repro.paperdata import TABLE2_CORES


def _build_report() -> ExperimentReport:
    cal = get_calibrated_model()
    report = ExperimentReport("table2_cores", "n/a", paper_reference=TABLE2_CORES)
    for name, core in CORES.items():
        report.add(
            core=name,
            clock_ghz=core.clock_ghz,
            l1_kb=core.l1_kb,
            l2_kb=core.l2_kb,
            fitted_gemm_gmacs=cal.params(name).r_mac / 1e6,
            fitted_transform_gmacs=cal.params(name).r_tr / 1e6,
        )
    return report


def test_table2_core_model(run_once):
    report = run_once(_build_report)
    rows = {r["core"]: r for r in report.rows}
    for name, spec in TABLE2_CORES.items():
        assert rows[name]["clock_ghz"] == spec["clock_ghz"]
        assert rows[name]["l1_kb"] == spec["l1_kb"]
        assert rows[name]["l2_kb"] == spec["l2_kb"]
    # The efficiency core must be fitted strictly slower on both pipelines.
    assert rows["A53"]["fitted_gemm_gmacs"] < rows["A73"]["fitted_gemm_gmacs"]
    assert rows["A53"]["fitted_transform_gmacs"] < rows["A73"]["fitted_transform_gmacs"]
