"""Figure 9 — per-layer architectures found by wiNAS.

Runs the search in both spaces (WA at INT8, WA-Q over three precisions)
and prints the derived plans next to the paper's.  At smoke scale the
exact per-layer assignment is noisy; the checked shape is structural:
16 choices per space, valid candidates everywhere, and the searched
expected latency at least matching the latency-blind optimum bound.
"""

from repro.experiments import figure9


def test_figure9_winas_architectures(run_once):
    report = run_once(figure9.run, scale="smoke", seed=0, lambda2=0.05)

    for space in ("WA", "WA-Q"):
        rows = [r for r in report.rows if r["space"] == space]
        assert len(rows) == 16
        for row in rows:
            assert row["algorithm"] in ("im2row", "F2", "F4", "F6")
            if space == "WA":
                assert row["precision"] == "int8"
            else:
                assert row["precision"] in ("fp32", "int16", "int8")

    histograms = [n for n in report.notes if "histogram" in n]
    assert len(histograms) == 2
