"""Table 1 — post-training Winograd swap accuracy collapse.

Regenerates: train FP32 direct-conv ResNet-18, swap every conv to
F2/F4/F6 at 32/16/8-bit, calibrate observers, evaluate.

Shape to match the paper: FP32 column flat; F2 survives quantization;
F4/F6 collapse toward chance at INT8.
"""

from repro.experiments import table1


def test_table1_posttraining_swap(run_once):
    report = run_once(table1.run, scale="smoke", seed=0)

    acc = {(r["method"], r["bits"]): r["accuracy"] for r in report.rows}
    baseline = acc[("direct", 32)]
    # FP32: every method matches direct convolution
    for method in ("F2", "F4", "F6"):
        assert abs(acc[(method, 32)] - baseline) < 0.05
    # INT8: F2 survives, F4/F6 collapse
    assert acc[("F2", 8)] > baseline - 0.1
    assert acc[("F4", 8)] < baseline - 0.3
    assert acc[("F6", 8)] < baseline - 0.3
