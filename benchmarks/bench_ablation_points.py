"""Ablation (§7) — Cook–Toom polynomial point sensitivity.

Shape to match the discussion: INT8 pipeline error grows with tile size;
naive consecutive-integer points blow up the transform dynamic range and
the quantized error for F6, while the default point set stays best or
tied for every configuration.
"""

from repro.experiments import ablation_points


def test_ablation_polynomial_points(run_once):
    report = run_once(ablation_points.run, scale="smoke", seed=0)

    def err(config, points):
        return report.find(config=config, points=points)["int8_error"]

    # error grows with tile size under the default points
    assert err("F(2,3)", "default") < err("F(4,3)", "default") < err("F(6,3)", "default")

    # naive integer points are catastrophically worse for the large tile
    assert err("F(6,3)", "integers") > 5 * err("F(6,3)", "default")

    # the FP64 pipeline is exact for every point set (pure algebra)
    assert all(r["fp64_error"] < 1e-6 for r in report.rows)

    # dynamic range explains the error ordering for F6
    rng_default = report.find(config="F(6,3)", points="default")["transform_range"]
    rng_integers = report.find(config="F(6,3)", points="integers")["transform_range"]
    assert rng_integers > rng_default
