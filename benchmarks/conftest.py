"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper at the
``smoke`` scale (see ``repro.experiments.common``) and prints the measured
rows next to the published ones.  Experiment benchmarks involve training
and are therefore run exactly once (``rounds=1``); kernel micro-benchmarks
use pytest-benchmark's normal statistics.

Run everything:   pytest benchmarks/ --benchmark-only
One experiment:   pytest benchmarks/bench_table1_posttraining_swap.py --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(autouse=True)
def _deterministic_init():
    from repro.nn import init

    init.set_default_rng(0)
    yield


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer, print its
    report, and persist it to ``benchmarks/reports/<experiment>.txt``
    (pytest captures stdout, so the file is the durable artefact)."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        if hasattr(result, "format"):
            text = result.format()
            print()
            print(text)
            REPORT_DIR.mkdir(exist_ok=True)
            name = getattr(result, "experiment", fn.__module__.rsplit(".", 1)[-1])
            (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        return result

    return _run
