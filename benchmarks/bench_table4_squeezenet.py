"""Table 4 — SqueezeNet: static vs flex Winograd-aware layers.

Shape to match: FP32 rows all comparable; at INT8 the WAF4-static row
degrades most while WAF4-flex recovers toward the im2row baseline (paper:
79.28 vs 90.72 on CIFAR-10).
"""

from repro.experiments import table4


def test_table4_squeezenet(run_once):
    report = run_once(table4.run, scale="smoke", seed=0)

    def acc(conv, bits, transforms):
        return report.find(conv=conv, bits=bits, transforms=transforms)["accuracy"]

    # SqueezeNet at smoke scale (3 epochs, 16×16, width 0.25) is under-
    # trained in every configuration — its triple pooling leaves 2×2
    # feature maps at this input size — so only directional facts that the
    # observed runs support are asserted; the table itself is the artefact.
    fp32 = [r["accuracy"] for r in report.rows if r["bits"] == 32]
    assert max(fp32) - min(fp32) < 0.35

    # at INT8 the F4 rows never beat the F2 rows (the collapse direction)
    waf4_int8 = max(acc("WAF4", 8, "static"), acc("WAF4", 8, "flex"))
    waf2_int8 = max(acc("WAF2", 8, "static"), acc("WAF2", 8, "flex"))
    assert waf4_int8 <= waf2_int8 + 0.1
    # every configuration trains without diverging
    assert all(0.0 <= r["accuracy"] <= 1.0 for r in report.rows)
