#!/usr/bin/env python
"""Benchmark-regression guard: fresh BENCH_engine.json vs the committed one.

Compares the *speedup* columns (engine vs eager, measured in the same
run, so they are machine-relative and comparable across hosts) of every
workload present in both reports.  Fails when any fresh speedup drops
more than ``--tolerance`` (default 25%) below the committed baseline,
and when the int8 anomaly regresses (native int8 slower than fp32-fast
by more than the tolerance).

Usage (CI)::

    cp BENCH_engine.json /tmp/bench_baseline.json   # before re-running
    ... run the benchmark (rewrites BENCH_engine.json) ...
    python benchmarks/check_bench_regression.py \
        --baseline /tmp/bench_baseline.json --fresh BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Multi-process serving must beat single-process by this factor at the
#: top concurrency — enforced only on hosts with >= MIN_CORES_PER_WORKER
#: cores per worker (bench_serve_throughput.py imports both, so the
#: benchmark gate and this regression guard can never diverge).
WORKERS_SPEEDUP_GATE = 1.3
MIN_CORES_PER_WORKER = 2

#: Booting a worker from a compiled-plan artifact (mmap, no compiler)
#: must beat compile-from-scratch by this factor.  The ratio compares
#: two timings taken back-to-back on the same host, so unlike absolute
#: throughput it is enforced everywhere, quick runs included
#: (docs/operations.md 'Compile-then-deploy').
ARTIFACT_SPEEDUP_GATE = 10.0

#: ``plan.run`` with tracing *disabled* must stay within this many
#: percent of the pristine untraced executor loop.  Like the artifact
#: gate it is a same-run, same-host ratio (interleaved min-of-N legs),
#: so it is enforced everywhere (docs/observability.md
#: 'Overhead budget').
TRACE_OVERHEAD_GATE_PCT = 1.0


def check(baseline: dict, fresh: dict, tolerance: float) -> list:
    failures = []
    fresh_rows = {r["workload"]: r for r in fresh.get("results", [])}
    for base_row in baseline.get("results", []):
        name = base_row["workload"]
        fresh_row = fresh_rows.get(name)
        if fresh_row is None:
            failures.append(f"{name}: workload disappeared from the fresh report")
            continue
        # Speedups are only comparable like-for-like: a row measured with
        # a different engine thread count is a different experiment.
        # (Reports before the parallel executor carried no "threads" key
        # and were serial — default 1 keeps them comparable.)
        base_threads = base_row.get("threads", 1)
        fresh_threads = fresh_row.get("threads", 1)
        if base_threads != fresh_threads:
            print(
                f"note: {name}: skipping speedup comparison "
                f"(baseline threads={base_threads}, fresh threads={fresh_threads})"
            )
            continue
        for key, base_value in base_row.items():
            if not key.startswith("speedup_"):
                continue
            fresh_value = fresh_row.get(key)
            if fresh_value is None:
                failures.append(f"{name}: column {key} disappeared")
                continue
            floor = (1.0 - tolerance) * base_value
            if fresh_value < floor:
                failures.append(
                    f"{name}: {key} regressed {base_value:.3f} -> "
                    f"{fresh_value:.3f} (floor {floor:.3f})"
                )
    failures += _check_threaded(baseline, fresh, tolerance)
    failures += _check_memory(fresh)
    failures += _check_trace_overhead(baseline, fresh)
    failures += _check_winograd_residency(baseline, fresh)
    failures += _check_workers_scaling(baseline, fresh, tolerance)
    failures += _check_artifact(fresh)
    failures += _check_overload(baseline, fresh, tolerance)
    failures += _check_selfheal(baseline, fresh)
    anomaly = fresh.get("int8_anomaly")
    if anomaly is not None:
        ceiling = (1.0 + tolerance) * anomaly["fp32_fast_ms"]
        if anomaly["int8_native_ms"] > ceiling:
            failures.append(
                "int8 anomaly regressed: native int8 "
                f"{anomaly['int8_native_ms']:.3f} ms vs fp32-fast "
                f"{anomaly['fp32_fast_ms']:.3f} ms (ceiling {ceiling:.3f})"
            )
    return failures


def _check_threaded(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Threaded speedups compare only like-for-like: same thread count on
    both reports, and at least that many cores on the fresh host."""
    base = baseline.get("threaded_speedup")
    fresh_t = fresh.get("threaded_speedup")
    if not base:
        return []  # pre-executor baseline: nothing to hold
    if not fresh_t:
        # The entry legitimately disappears only on a host too small to
        # run the baseline's thread count; on a capable host a missing
        # entry means thread resolution broke — exactly what we guard.
        base_threads = int(base.get("threads", 1) or 1)
        if int(fresh.get("cpu_count", 1)) >= max(2, base_threads):
            return [
                "threaded_speedup entry disappeared from the fresh report "
                f"(host has {fresh.get('cpu_count')} cores for "
                f"threads={base_threads})"
            ]
        print(
            "note: skipping threaded_speedup comparison (fresh host has "
            f"{fresh.get('cpu_count')} cores; baseline ran threads={base_threads})"
        )
        return []
    if base.get("threads") != fresh_t.get("threads"):
        print(
            "note: skipping threaded_speedup comparison "
            f"(baseline threads={base.get('threads')}, "
            f"fresh threads={fresh_t.get('threads')})"
        )
        return []
    threads = int(fresh_t.get("threads", 1))
    if int(fresh.get("cpu_count", 1)) < threads:
        print(
            f"note: skipping threaded_speedup comparison (fresh host has "
            f"{fresh.get('cpu_count')} cores for threads={threads})"
        )
        return []
    failures = []
    for name, base_entry in base.get("workloads", {}).items():
        fresh_entry = fresh_t.get("workloads", {}).get(name)
        if fresh_entry is None:
            failures.append(f"threaded_speedup: workload {name} disappeared")
            continue
        floor = (1.0 - tolerance) * base_entry["speedup"]
        if fresh_entry["speedup"] < floor:
            failures.append(
                f"threaded_speedup: {name} regressed "
                f"{base_entry['speedup']:.3f} -> {fresh_entry['speedup']:.3f} "
                f"(floor {floor:.3f})"
            )
    return failures


def _check_workers_scaling(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Multi-process serving rules (serve reports only).

    Correctness is host-independent: sharded responses must stay
    bit-identical to the reference oracle wherever they were measured.
    The throughput expectation — ``workers=N`` sustains >= 1.3x the
    single-process rate at the top concurrency — only holds with >= 2
    cores per worker, so the guard *skips* (never fails) the speedup
    checks on smaller hosts and records why.
    """
    failures = []
    if fresh.get("bit_identical_reference") is False:
        failures.append(
            "served responses NOT bit-identical to direct plan.run "
            "(reference backend)"
        )
    if fresh.get("bit_identical_workers") is False:
        failures.append(
            "workers-mode responses NOT bit-identical to the in-process "
            "reference oracle"
        )
    ws = fresh.get("workers_scaling")
    if not ws:
        return failures
    workers = int(ws.get("workers", 0) or 0)
    cpu = int(ws.get("cpu_count", 1) or 1)
    if workers < 1 or ws.get("speedup") is None:
        return failures
    if ws.get("quick"):
        # Quick (CI smoke) sweeps use few requests at low concurrency on
        # noisy shared runners — the benchmark's own gate skips all
        # throughput expectations there, and so does the guard.
        print("note: skipping workers-scaling speedup check (quick report)")
        return failures
    if cpu < MIN_CORES_PER_WORKER * workers:
        print(
            f"note: skipping workers-scaling speedup check (host has {cpu} "
            f"cores for workers={workers}; needs >= "
            f"{MIN_CORES_PER_WORKER * workers})"
        )
        return failures
    if ws["speedup"] < WORKERS_SPEEDUP_GATE:
        failures.append(
            f"workers={workers} throughput speedup {ws['speedup']:.2f}x "
            f"< {WORKERS_SPEEDUP_GATE}x over single-process at concurrency "
            f"{ws.get('concurrency')} on a {cpu}-core host"
        )
    base_ws = baseline.get("workers_scaling")
    if (
        base_ws
        and base_ws.get("speedup")
        and not base_ws.get("quick")
        and int(base_ws.get("workers", 0) or 0) == workers
        and int(base_ws.get("cpu_count", 1) or 1)
        >= MIN_CORES_PER_WORKER * workers
    ):
        floor = (1.0 - tolerance) * base_ws["speedup"]
        if ws["speedup"] < floor:
            failures.append(
                f"workers-scaling speedup regressed "
                f"{base_ws['speedup']:.3f} -> {ws['speedup']:.3f} "
                f"(floor {floor:.3f})"
            )
    return failures


def _check_artifact(fresh: dict) -> list:
    """AOT artifact rules (serve reports only; all host-independent).

    * artifact-loaded plans run bit-identical to freshly compiled ones;
    * mmap cold start beats compile-from-scratch by
      ``ARTIFACT_SPEEDUP_GATE`` (a same-host ratio, enforced always);
    * a blue/green hot-swap under closed-loop load drops **zero**
      requests (docs/operations.md 'Blue/green deploys and rollback').
    """
    art = fresh.get("artifact_cold_start")
    if not art:
        return []
    failures = []
    if art.get("bit_identical") is False:
        failures.append(
            "artifact-loaded plan NOT bit-identical to the freshly "
            "compiled plan"
        )
    speedup = art.get("speedup")
    if speedup is not None and speedup < ARTIFACT_SPEEDUP_GATE:
        failures.append(
            f"artifact cold-start speedup {speedup:.1f}x < "
            f"{ARTIFACT_SPEEDUP_GATE}x (compile {art.get('compile_ms', 0):.0f} ms "
            f"vs mmap load {art.get('load_ms', 0):.1f} ms)"
        )
    swap = art.get("hot_swap") or {}
    if swap.get("requests_failed", 0) != 0:
        failures.append(
            f"blue/green hot-swap dropped {swap['requests_failed']} "
            f"requests (ok={swap.get('requests_ok')})"
        )
    return failures


def _check_overload(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Overload-honesty rules (serve reports only; ``overload_goodput``).

    Host-independent, enforced on every report that carries the entry:

    * ``expired_executed`` == 0 — a request the server answered 504 must
      never also appear inside an executed batch (work after death);
    * ``unaccounted`` == 0 — every sent request ended in *some* recorded
      outcome (no silent drops);
    * ``goodput_rps`` > 0 — a server at 2x offered load still answers.

    Throughput-shaped expectations (goodput floor vs baseline, tight-class
    p99 within its deadline) are skipped on quick reports, like the
    workers-scaling gate.
    """
    entry = fresh.get("overload_goodput")
    if not entry:
        if baseline.get("overload_goodput"):
            return ["overload_goodput entry disappeared from the fresh report"]
        return []
    failures = []
    if entry.get("expired_executed", 0) != 0:
        failures.append(
            f"{entry['expired_executed']} expired (504) requests were "
            "still executed — expulsion at batch formation is broken"
        )
    if entry.get("unaccounted", 0) != 0:
        failures.append(
            f"{entry['unaccounted']} of {entry.get('sent')} overload "
            "requests vanished without a recorded outcome (silent drop)"
        )
    if not entry.get("goodput_rps", 0) > 0:
        failures.append(
            "zero goodput under 2x overload "
            f"(offered {entry.get('offered_rps', 0):.0f} rps)"
        )
    if entry.get("quick"):
        print("note: skipping overload goodput/p99 checks (quick report)")
        return failures
    tight = entry.get("tight") or {}
    deadline = tight.get("deadline_ms")
    p99 = tight.get("p99_ms")
    if deadline is not None and p99 is not None and p99 > deadline:
        failures.append(
            f"tight-class p99 {p99:.1f} ms exceeds its deadline "
            f"{deadline:.1f} ms under 2x overload — deadline-aware "
            "batching is not protecting interactive traffic"
        )
    base_entry = baseline.get("overload_goodput")
    if base_entry and not base_entry.get("quick"):
        base_ratio = base_entry.get("goodput_ratio")
        ratio = entry.get("goodput_ratio")
        if base_ratio and ratio is not None:
            floor = (1.0 - tolerance) * base_ratio
            if ratio < floor:
                failures.append(
                    f"overload goodput_ratio regressed {base_ratio:.3f} -> "
                    f"{ratio:.3f} (floor {floor:.3f})"
                )
    return failures


def _check_selfheal(baseline: dict, fresh: dict) -> list:
    """Self-healing rules (serve reports only; ``selfheal_goodput``).

    Host-independent, enforced on every report that carries the entry:

    * both legs keep the overload honesty invariants — every request
      accounted, no expired (504) request executed;
    * the kill -9 drill recovered: the restart replayed the journal,
      every model came back at its pre-kill content-hash version, and
      the recovered server's responses are bit-identical (zero manual
      re-deploys);
    * the entry disappearing after a baseline carried it is itself a
      failure — the gate must not silently stop being measured.

    The throughput-shaped expectation — the autoscaler+brownout server
    sustains *strictly higher* goodput than the static single-replica
    baseline under the same chaos and offered schedule — is skipped on
    quick reports, like the other throughput gates.
    """
    entry = fresh.get("selfheal_goodput")
    if not entry:
        if baseline.get("selfheal_goodput"):
            return ["selfheal_goodput entry disappeared from the fresh report"]
        return []
    failures = []
    for leg_name in ("static", "selfheal"):
        leg = entry.get(leg_name) or {}
        if leg.get("expired_executed", 0) != 0:
            failures.append(
                f"selfheal {leg_name} leg: {leg['expired_executed']} expired "
                "(504) requests were still executed under chaos"
            )
        if leg.get("unaccounted", 0) != 0:
            failures.append(
                f"selfheal {leg_name} leg: {leg['unaccounted']} of "
                f"{leg.get('sent')} requests vanished without a recorded "
                "outcome (silent drop)"
            )
    recovery = entry.get("recovery") or {}
    if not recovery.get("versions_match"):
        failures.append(
            "kill -9 recovery: restarted server's model versions do not "
            f"match pre-kill (before={recovery.get('models_before')}, "
            f"after={recovery.get('models_after')})"
        )
    if not recovery.get("response_identical"):
        failures.append(
            "kill -9 recovery: restarted server's responses are not "
            "bit-identical to pre-kill"
        )
    if not recovery.get("recovered"):
        failures.append(
            "kill -9 recovery failed: the journal replay did not restore "
            f"the runtime deploy {recovery.get('deployed_version')!r}"
        )
    if entry.get("quick"):
        print("note: skipping selfheal goodput-improvement check (quick report)")
        return failures
    improvement = entry.get("goodput_improvement")
    if improvement is None or not improvement > 1.0:
        failures.append(
            "self-healing server did not beat the static baseline: goodput "
            f"improvement {improvement} (selfheal "
            f"{(entry.get('selfheal') or {}).get('goodput_rps', 0):.0f} rps "
            f"vs static "
            f"{(entry.get('static') or {}).get('goodput_rps', 0):.0f} rps) "
            "must be strictly > 1.0x"
        )
    return failures


def _check_trace_overhead(baseline: dict, fresh: dict) -> list:
    """Tracing-off overhead rule (engine reports only; host-independent).

    ``overhead_disabled_pct`` compares ``plan.run`` (tracing disabled)
    against the pristine ``_run_untraced`` loop within one interleaved
    measurement, so the ratio holds on any host and is enforced
    unconditionally.  The entry disappearing after a baseline carried it
    is itself a failure — the gate must not silently stop being
    measured.  The traced leg is informational, never gated.
    """
    entry = fresh.get("trace_overhead")
    if not entry:
        if baseline.get("trace_overhead"):
            return [
                "trace_overhead entry disappeared from the fresh report"
            ]
        return []
    pct = entry.get("overhead_disabled_pct")
    if pct is None:
        return ["trace_overhead entry lacks overhead_disabled_pct"]
    if pct > TRACE_OVERHEAD_GATE_PCT:
        return [
            f"tracing-off overhead {pct:.2f}% > "
            f"{TRACE_OVERHEAD_GATE_PCT:.1f}% on {entry.get('workload')} "
            f"(disabled {entry.get('ms_disabled')} ms vs pristine "
            f"{entry.get('ms_pristine')} ms)"
        ]
    return []


def _check_winograd_residency(baseline: dict, fresh: dict) -> list:
    """Transform-domain residency rules (engine reports only).

    Host-independent, enforced on every report that carries the entry:

    * the compiled chain actually got residency edges — the pass
      silently declining on its own showcase workload is a compiler
      regression, not a measurement artifact;
    * ``speedup`` > 1.0 — resident vs round-trip is a same-run
      interleaved min-of-N ratio on one host, so keeping taps resident
      must never be a pessimization wherever it is measured;
    * ``steady_state_allocations`` == 0 — the tap tensors live in
      planned arena slots, and residency must not reopen per-run
      allocations.

    The entry disappearing after a baseline carried it is itself a
    failure — the gate must not silently stop being measured.
    """
    entry = fresh.get("winograd_residency")
    if not entry:
        if baseline.get("winograd_residency"):
            return [
                "winograd_residency entry disappeared from the fresh report"
            ]
        return []
    failures = []
    if entry.get("residency_edges", 0) < 1:
        failures.append(
            "residency pass wired zero edges on "
            f"{entry.get('workload')} — eligibility regression"
        )
    speedup = entry.get("speedup")
    if speedup is None or not speedup > 1.0:
        failures.append(
            f"transform-domain residency speedup {speedup} must be "
            f"strictly > 1.0x on {entry.get('workload')} (resident "
            f"{entry.get('ms_resident')} ms vs round-trip "
            f"{entry.get('ms_roundtrip')} ms)"
        )
    if entry.get("steady_state_allocations", 0) != 0:
        failures.append(
            "resident plan broke the zero-allocation contract: "
            f"{entry['steady_state_allocations']} steady-state allocations "
            f"on {entry.get('workload')}"
        )
    return failures


def _check_memory(fresh: dict) -> list:
    """The zero-allocation contract is host-independent: a fresh report
    showing steady-state arena allocations is a planner regression."""
    memory = fresh.get("memory")
    if memory is None:
        return []
    if memory.get("steady_state_allocations", 0) != 0:
        return [
            "memory planner regressed: "
            f"{memory['steady_state_allocations']} steady-state allocations "
            f"on {memory.get('workload')}"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_engine.json")
    parser.add_argument("--fresh", required=True, help="freshly measured report")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional speedup drop per workload (default 0.25)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    failures = check(baseline, fresh, args.tolerance)
    if failures:
        print("benchmark regression detected:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    workloads = [r["workload"] for r in fresh.get("results", [])]
    print(f"benchmark guard ok ({len(workloads)} workloads, "
          f"tolerance {args.tolerance:.0%}): {', '.join(workloads)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
