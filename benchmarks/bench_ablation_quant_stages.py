"""Ablation (§3.2/§7) — quantization diversity across pipeline stages.

Shape to match the paper's hypothesis: the Hadamard/summation stage is the
dominant INT8 error source for F4, so relaxing it to 16 bits recovers far
more accuracy than relaxing any boundary stage.
"""

from repro.experiments import ablation_quant_stages


def test_ablation_quant_stages(run_once):
    report = run_once(ablation_quant_stages.run, scale="smoke", seed=0)

    base = report.find(stages="all INT8")["error"]
    fp32 = report.find(stages="fp32 (no quantization)")["error"]
    hadamard = report.find(stages="hadamard→INT16")["error"]

    assert fp32 < 1e-3  # unquantized pipeline is exact-ish
    assert hadamard < base * 0.5  # relaxing Hadamard halves the error

    # Hadamard relaxation helps more than any boundary-stage relaxation.
    for stage in ("input", "weight", "output"):
        other = report.find(stages=f"{stage}→INT16")["error"]
        assert hadamard < other
