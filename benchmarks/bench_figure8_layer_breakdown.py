"""Figure 8 — per-layer latency ratios with transform-stage breakdown.

Shapes to match the paper's bars: Winograd never helps the 3→32 input
layer on either core; deep layers gain clearly on the A73 and less on the
A53; Winograd bars decompose into input-transform / GEMM / output-
transform stages that sum to the total.
"""

import pytest

from repro.experiments import figure8


def test_figure8_layer_breakdown(run_once):
    report = run_once(figure8.run, scale="smoke")

    def ratio(core, layer, algorithm):
        return report.find(core=core, layer=layer, algorithm=algorithm)["ratio"]

    # Input layer: every Winograd config is slower than im2row on both cores.
    for core in ("A73", "A53"):
        for algo in ("F2", "F4", "F6"):
            assert ratio(core, "32x32 3->32", algo) > 1.0

    # Deep layers: Winograd wins on the A73 (paper shows ~2–3×).
    assert ratio("A73", "16x16 128->128", "F4") < 0.7
    assert ratio("A73", "8x8 256->256", "F4") < 0.8

    # The A73 gains more than the A53 (paper §6.2, memory subsystem).
    gain_a73 = 1.0 / ratio("A73", "16x16 128->128", "F4")
    gain_a53 = 1.0 / ratio("A53", "16x16 128->128", "F4")
    assert gain_a73 > gain_a53

    # Stage decomposition is a genuine partition of each Winograd bar.
    for row in report.rows:
        if row["algorithm"].startswith("F"):
            total = row["input_tr_ratio"] + row["gemm_ratio"] + row["output_tr_ratio"]
            assert total == pytest.approx(row["ratio"], rel=0.05)
