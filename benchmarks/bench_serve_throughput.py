"""Serving throughput benchmark: dynamic batching vs batch-1 serving.

Not a paper table — this measures the :mod:`repro.serve` stack on this
host.  For each batching policy (batch-1 control vs dynamic micro-batching)
it starts an in-process server over the ResNet-18 w0.25 F4 int8 smoke
model, sweeps closed-loop client concurrency, and persists the result to
``BENCH_serve.json`` at the repo root so the serving-perf trajectory is
tracked across PRs.

Five gates make this a regression test as well as a benchmark (run by the
CI ``serve-smoke`` job, ``--quick`` there):

* served responses must be **bit-identical** to direct
  ``CompiledPlan.run`` on the reference backend, under concurrency;
* dynamic batching must reach **>= 1.5x** the batch-1 throughput at
  concurrency >= 16;
* booting from a compiled-plan artifact (mmap) must be **>= 10x**
  faster than compile-from-scratch, with bit-identical outputs
  (docs/artifact-format.md);
* a blue/green hot-swap under load must drop **zero** requests
  (docs/operations.md 'Blue/green deploys and rollback');
* the self-healing control plane must earn its keep: under the same
  crash-storm chaos and offered overload, the autoscaler+brownout server
  sustains strictly higher goodput than a static single-replica baseline
  (full runs), and a kill -9 + restart from ``--state-dir`` recovers
  every model at its pre-kill content-hash version with bit-identical
  responses (always; docs/operations.md 'Self-healing & autoscaling
  runbook').

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py [--quick]
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SPEEDUP_GATE = 1.5
GATE_CONCURRENCY = 16
# Workers gate shared with the CI regression guard — one source of truth.
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
from check_bench_regression import (  # noqa: E402
    ARTIFACT_SPEEDUP_GATE,
    MIN_CORES_PER_WORKER,
    WORKERS_SPEEDUP_GATE,
    _check_selfheal,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # The throughput variant serves the numerics-relaxed ``turbo`` backend
    # (production int8 numerics); the bit-identity gate always checks a
    # ``reference``-backend variant of the same model against direct
    # CompiledPlan.run.
    parser.add_argument("--model", default="resnet18-w0.25-F4-int8@turbo")
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweep for CI smoke"
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes of the swept servers (0 = in-process baseline)",
    )
    parser.add_argument(
        "--executor-threads", type=int, default=4,
        help="dispatch threads of the swept servers",
    )
    parser.add_argument(
        "--workers-scale", type=int, default=2,
        help="also measure this many worker processes at top concurrency "
        "and record the workers_scaling entry (0 disables)",
    )
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument(
        "--trials",
        type=int,
        default=2,
        help="trials per (policy, concurrency) cell; best throughput kept "
        "(interference on a shared host only lowers closed-loop throughput)",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_serve.json"), help="report path"
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="measure and write the report without failing on the gates",
    )
    args = parser.parse_args(argv)

    from repro.serve import benchmark_serving

    report = benchmark_serving(
        model_name=args.model,
        requests_per_level=args.requests,
        workers=args.workers,
        executor_threads=args.executor_threads,
        workers_scale=args.workers_scale,
        out_path=args.out,
        quick=args.quick,
        trials=args.trials,
    )

    failures = []
    if not report["bit_identical_reference"]:
        failures.append(
            "served responses are NOT bit-identical to direct plan.run "
            "on the reference backend"
        )
    if report.get("bit_identical_workers") is False:
        failures.append(
            "workers-mode responses are NOT bit-identical to the "
            "in-process reference oracle"
        )
    # Artifact gates hold in --quick too: the cold-start speedup is a
    # same-host ratio and zero-drop hot-swap is pure correctness
    # (docs/operations.md 'Compile-then-deploy').
    artifact = report.get("artifact_cold_start") or {}
    if artifact.get("bit_identical") is False:
        failures.append(
            "artifact-loaded plan is NOT bit-identical to the freshly "
            "compiled plan"
        )
    if artifact.get("speedup") is not None and (
        artifact["speedup"] < ARTIFACT_SPEEDUP_GATE
    ):
        failures.append(
            f"artifact cold-start speedup {artifact['speedup']:.1f}x < "
            f"{ARTIFACT_SPEEDUP_GATE}x "
            f"(compile {artifact.get('compile_ms', 0):.0f} ms vs mmap "
            f"load {artifact.get('load_ms', 0):.1f} ms)"
        )
    hot_swap = artifact.get("hot_swap") or {}
    if hot_swap.get("requests_failed", 0) != 0:
        failures.append(
            f"blue/green hot-swap dropped {hot_swap['requests_failed']} "
            "requests"
        )
    # Self-healing gates share the regression guard's rule set (honesty
    # + kill -9 recovery always; the goodput-improvement expectation
    # only on full runs) so the benchmark and the guard never diverge.
    failures += _check_selfheal({}, report)
    if not args.quick:
        # The throughput gate is calibrated for the single-core reference
        # host this repo's BENCH_serve.json is generated on; --quick (CI
        # smoke on shared multi-core runners) checks correctness only and
        # just reports the measured speedups.
        gated = {
            int(c): s
            for c, s in report["speedup_dynamic_over_batch1"].items()
            if int(c) >= GATE_CONCURRENCY
        }
        if not gated:
            failures.append(f"no sweep point at concurrency >= {GATE_CONCURRENCY}")
        elif max(gated.values()) < SPEEDUP_GATE:
            failures.append(
                f"dynamic batching speedup {max(gated.values()):.2f}x "
                f"< {SPEEDUP_GATE}x at concurrency >= {GATE_CONCURRENCY}"
            )
        scaling = report.get("workers_scaling")
        if scaling and scaling.get("speedup") is not None:
            # Acceptance: workers=2 sustains >= 1.3x single-process
            # throughput — but only with enough cores per worker;
            # smaller hosts record the entry and skip the expectation.
            if scaling["cpu_count"] >= MIN_CORES_PER_WORKER * scaling["workers"]:
                if scaling["speedup"] < WORKERS_SPEEDUP_GATE:
                    failures.append(
                        f"workers={scaling['workers']} speedup "
                        f"{scaling['speedup']:.2f}x < {WORKERS_SPEEDUP_GATE}x "
                        f"on a {scaling['cpu_count']}-core host"
                    )
            else:
                print(
                    f"workers-scaling gate skipped: {scaling['cpu_count']} "
                    f"cores for workers={scaling['workers']} "
                    f"(measured {scaling['speedup']:.2f}x)"
                )
    if failures and not args.no_gate:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("serving gates passed" if not failures else "gates skipped (--no-gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
