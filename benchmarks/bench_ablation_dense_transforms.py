"""Ablation (§A.2) — latency overhead of dense (learned) transforms.

Shape to match: a positive overhead everywhere, in the ~5–30% band the
paper reports (A73: +17% FP32 / +20% INT8), and proportionally larger on
the A53 where transform stages dominate.
"""

from repro.experiments import ablation_dense_transforms


def test_ablation_dense_transforms(run_once):
    report = run_once(ablation_dense_transforms.run, scale="smoke")

    for row in report.rows:
        assert 0 < row["overhead_pct"] < 50, row

    a73_fp32 = report.find(core="A73", dtype="fp32")["overhead_pct"]
    a53_fp32 = report.find(core="A53", dtype="fp32")["overhead_pct"]
    assert a53_fp32 > a73_fp32  # transforms weigh more on the A53

    # sparsity facts quoted in §A.2 are recorded in the notes
    assert any("50%" in n for n in report.notes)
