"""Figure 5 — INT8 LeNet with 5×5 filters on the MNIST stand-in.

Shape to match the paper: with 5×5 filters the tile sizes explode (F6 →
10×10), so static transforms degrade sharply with m while flex variants
recover (paper: static F4 73%, F6 51%, flex ≥97%).

At smoke scale (8 epochs, 400 synthetic digits) the flex-vs-static gap is
cleanly resolvable for F2 (the paper's 30-epoch MNIST budget is needed for
the INT8 F4/F6 5×5 cases, whose tiles reach 10×10); for F4/F6 the
asserted shape is the *degradation with tile size* that motivates flex.
"""

from repro.experiments import figure5


def test_figure5_lenet(run_once):
    report = run_once(figure5.run, scale="smoke", seed=0)

    def acc(config):
        return report.find(config=config)["accuracy"]

    base = acc("im2row")
    assert base > 0.6
    # the headline: learning the transforms beats keeping them fixed
    assert acc("F2-flex") >= acc("F2") + 0.1
    # static degradation grows with tile size (F4/F6 near chance at INT8)
    assert acc("F4") <= acc("F2") + 0.05
    assert acc("F6") <= acc("F2") + 0.05
    # training curves were recorded for every config
    assert all(len(r["curve"]) > 0 for r in report.rows)
