"""Table 5 — ResNeXt-20 (8×16): grouped Winograd, static vs flex.

Same shape as Table 4, on grouped convolutions (cardinality 8): INT8
WAF4-static is the weak row (paper: 76.73), flex recovers (93.29).
"""

from repro.experiments import table5


def test_table5_resnext(run_once):
    report = run_once(table5.run, scale="smoke", seed=0)

    def acc(conv, bits, transforms):
        return report.find(conv=conv, bits=bits, transforms=transforms)["accuracy"]

    fp32 = [r["accuracy"] for r in report.rows if r["bits"] == 32]
    assert max(fp32) - min(fp32) < 0.35

    assert acc("im2row", 8, "-") > 0.3
    # Table 5's INT8 shape: the grouped F4 rows collapse far below the F2
    # rows (paper: 76.7 static vs 92.9–93.3); at smoke scale both F4 rows
    # are near chance so flex-vs-static within F4 is noise and only the
    # collapse is asserted.
    waf4_int8 = max(acc("WAF4", 8, "static"), acc("WAF4", 8, "flex"))
    assert waf4_int8 < acc("WAF2", 8, "static") - 0.2
    assert acc("WAF2", 8, "flex") > 0.25
