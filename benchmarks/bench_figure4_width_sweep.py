"""Figure 4 — accuracy across configs at FP32 vs INT8.

The smoke sweep covers one width at {32, 8}-bit for all seven line styles
(im2row, F2/F4/F6 ± flex).  Shapes to match the paper: at FP32 every
config tracks im2row; at INT8 F2 stays close while larger static tiles
fall behind, and flex variants dominate their static counterparts.
"""

from repro.experiments import figure4


def test_figure4_width_sweep(run_once):
    report = run_once(figure4.run, scale="smoke", seed=0)

    def acc(config, bits):
        return report.find(config=config, bits=bits)["accuracy"]

    # FP32: Winograd-aware training is accuracy-neutral for the static
    # configs and F2/F4 flex.  (F6-flex at FP32 can diverge under the
    # shared smoke-scale learning rate — the 8x8-tile transforms compound
    # across 12 layers; the paper's 120-epoch cosine schedule avoids this.
    # It is reported but not asserted here.)
    base32 = acc("im2row", 32)
    for config in ("F2", "F2-flex", "F4", "F4-flex", "F6"):
        assert acc(config, 32) > base32 - 0.3

    # INT8: the flex-vs-static gap is resolvable for F2 at this budget;
    # F4/F6 INT8 sit near chance either way (their recovery needs the
    # paper's budget — see EXPERIMENTS.md) so only the *collapse relative
    # to F2* is asserted for them.
    assert acc("F2-flex", 8) >= acc("F2", 8) - 0.05
    assert acc("F2", 8) > acc("im2row", 8) - 0.3
    for tile in ("F4", "F6"):
        assert acc(tile, 8) < acc("F2", 8) - 0.2
