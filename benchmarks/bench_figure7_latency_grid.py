"""Figure 7 — the dense per-layer latency grid, model vs measurements.

Regenerates all 240 cells of the published A73 FP32 grid from the
calibrated analytical model and scores rank agreement.  Shapes to match:
per-column Spearman ρ ≥ 0.95, winner agreement ≥ 75%, and the three §6.2
observations (im2row wins the input column; optimal m tracks output
width; F6 takes over at large widths).
"""

from repro.experiments import figure7


def test_figure7_latency_grid(run_once):
    report = run_once(figure7.run, scale="smoke")

    spearman_notes = [n for n in report.notes if n.startswith("spearman(")]
    assert len(spearman_notes) == 5
    for note in spearman_notes:
        rho = float(note.split("=")[1])
        assert rho > 0.95, note

    agreement = next(n for n in report.notes if n.startswith("winner agreement"))
    agree, total = agreement.split("=")[1].split("/")
    assert int(agree) / int(total) >= 0.75

    # §6.2 observation 1: im2row wins the whole 3→32 column, both sides.
    for row in report.rows:
        if row["channels"] == "3->32":
            assert row["winner_pred"] == "im2row"
            assert row["winner_paper"] == "im2row"

    # §6.2 observation 3: F6 wins the deep wide cells in both grids.
    wide = report.find(out_width=24, channels="256->512")
    assert wide["winner_pred"] == "F6" and wide["winner_paper"] == "F6"
