"""Kernel micro-benchmarks: real wall-clock of the NumPy compute kernels.

Not a paper table — this measures *this implementation's* kernels with
pytest-benchmark statistics, documenting that the Winograd algorithm's
multiplication savings are real in the reference kernels too (the GEMM
formulation does t²·K·C·P MACs vs 9·C·K·W² for im2row).

The ``engine-vs-eager`` group compares the compiled inference engine
(:mod:`repro.engine`) against the eager autograd forward on batched
smoke models, and persists the speedup summary to ``BENCH_engine.json``
at the repo root so the perf trajectory is tracked across PRs.
"""

import pathlib

import numpy as np
import pytest

from repro.winograd.functional import direct_conv2d, winograd_conv2d
from repro.winograd.transforms import get_transform

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 64, 32, 32)).astype(np.float32)
    w = rng.standard_normal((64, 64, 3, 3)).astype(np.float32)
    return x, w


def test_kernel_direct_conv(benchmark, workload):
    x, w = workload
    result = benchmark(direct_conv2d, x, w, padding=1)
    assert result.shape == (1, 64, 32, 32)


@pytest.mark.parametrize("m", [2, 4, 6])
def test_kernel_winograd(benchmark, workload, m):
    x, w = workload
    tr = get_transform(m, 3, dtype=np.float32)
    result = benchmark(winograd_conv2d, x, w, tr, padding=1)
    assert result.shape == (1, 64, 32, 32)


def test_kernel_winograd_layer_forward(benchmark, workload):
    from repro.autograd import Tensor
    from repro.autograd.function import no_grad
    from repro.winograd.layer import WinogradConv2d

    x, w = workload
    layer = WinogradConv2d(64, 64, 3, m=4, bias=False)
    layer.weight.data = w
    layer.eval()
    with no_grad():
        result = benchmark(layer, Tensor(x))
    assert result.shape == (1, 64, 32, 32)


# ---------------------------------------------------------------------------
# Compiled engine vs eager forward
# ---------------------------------------------------------------------------


def _engine_workloads():
    """The smoke models the engine-vs-eager comparison covers."""
    from repro.bench import _engine_workloads as build

    return build(seed=0)


@pytest.fixture(scope="module")
def engine_workloads():
    from repro.autograd import Tensor, no_grad

    workloads = _engine_workloads()
    for model, x in workloads.values():
        model.eval()
        with no_grad():  # warm quantizer observers so plans freeze ranges
            model(Tensor(x))
    return workloads


@pytest.mark.parametrize("name", ["lenet-F2", "resnet18-w0.25-F4", "resnet18-w0.25-F4-int8"])
def test_engine_compiled_forward(benchmark, engine_workloads, name):
    from repro.engine import compile_model

    model, x = engine_workloads[name]
    plan = compile_model(model, backend="fast")
    result = benchmark(plan.run, x)
    assert result.shape[0] == x.shape[0]


@pytest.mark.parametrize("name", ["resnet18-w0.25-F4"])
def test_eager_forward(benchmark, engine_workloads, name):
    from repro.autograd import Tensor, no_grad

    model, x = engine_workloads[name]

    def eager():
        with no_grad():
            return model(Tensor(x))

    result = benchmark(eager)
    assert result.shape[0] == x.shape[0]


@pytest.mark.parametrize("name", ["resnet18-w0.25-F4-int8"])
def test_engine_int8_backend_forward(benchmark, engine_workloads, name):
    from repro.engine import compile_model

    model, x = engine_workloads[name]
    plan = compile_model(model, backend="int8")
    result = benchmark(plan.run, x)
    assert result.shape[0] == x.shape[0]


def test_bench_engine_vs_eager(benchmark, engine_workloads):
    """Engine-vs-eager speedups, persisted to BENCH_engine.json.

    Two acceptance gates ride on this report (see repro.bench for the
    measurement itself, shared with the ``repro bench engine`` CLI):

    * the compiled fast plan must beat the eager forward by a clear
      margin on the batched ResNet smoke workload;
    * the int8 anomaly must stay inverted — the quantized model on its
      native int8 backend at least matches fp32 on the fast backend,
      instead of being ~2x slower like int8@fast.
    """
    from repro.bench import run_engine_benchmark
    from repro.engine import compile_model

    report = run_engine_benchmark(out_path=str(REPO_ROOT / "BENCH_engine.json"))
    summary = report["results"]

    resnet = next(r for r in summary if r["workload"] == "resnet18-w0.25-F4")
    model, x = engine_workloads["resnet18-w0.25-F4"]
    plan = compile_model(model, backend="fast")
    benchmark(plan.run, x)
    assert resnet["speedup_fast"] >= 1.2, f"engine regressed vs eager: {resnet}"

    anomaly = report["int8_anomaly"]
    # Same-run comparison.  The contract is "native int8 at least matches
    # fp32-fast instead of being ~2x slower"; since the zero-allocation
    # executor sped fp32-fast up ~15% the two now sit within noise of
    # each other, so the grace matches check_bench_regression's 25%.
    assert anomaly["int8_native_ms"] <= 1.25 * anomaly["fp32_fast_ms"], (
        f"int8 anomaly regressed: {anomaly}"
    )
    assert anomaly["int8_native_ms"] < anomaly["int8_fast_ms"], (
        f"native int8 slower than simulated int8: {anomaly}"
    )
