"""Kernel micro-benchmarks: real wall-clock of the NumPy compute kernels.

Not a paper table — this measures *this implementation's* kernels with
pytest-benchmark statistics, documenting that the Winograd algorithm's
multiplication savings are real in the reference kernels too (the GEMM
formulation does t²·K·C·P MACs vs 9·C·K·W² for im2row).
"""

import numpy as np
import pytest

from repro.winograd.functional import direct_conv2d, winograd_conv2d
from repro.winograd.transforms import get_transform


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 64, 32, 32)).astype(np.float32)
    w = rng.standard_normal((64, 64, 3, 3)).astype(np.float32)
    return x, w


def test_kernel_direct_conv(benchmark, workload):
    x, w = workload
    result = benchmark(direct_conv2d, x, w, padding=1)
    assert result.shape == (1, 64, 32, 32)


@pytest.mark.parametrize("m", [2, 4, 6])
def test_kernel_winograd(benchmark, workload, m):
    x, w = workload
    tr = get_transform(m, 3, dtype=np.float32)
    result = benchmark(winograd_conv2d, x, w, tr, padding=1)
    assert result.shape == (1, 64, 32, 32)


def test_kernel_winograd_layer_forward(benchmark, workload):
    from repro.autograd import Tensor
    from repro.autograd.function import no_grad
    from repro.winograd.layer import WinogradConv2d

    x, w = workload
    layer = WinogradConv2d(64, 64, 3, m=4, bias=False)
    layer.weight.data = w
    layer.eval()
    with no_grad():
        result = benchmark(layer, Tensor(x))
    assert result.shape == (1, 64, 32, 32)
